//! CI fidelity gate: the analytical model's relative wall-clock error
//! against the cycle engine must stay within the declared bound
//! (p95 <= 25%) on the CG/EP/MG seeds across the paper's configurations.
//!
//! This is the calibration pin for `ModelParams::default()`: if a model
//! or engine change moves the error past the declared bound, this test —
//! and the serve-side sentinel auditor — both catch it.

use paxsim_core::configs::{all_configs, HwConfig};
use paxsim_core::hash::StudySpec;
use paxsim_core::single::run_trials_with;
use paxsim_core::store::{TraceKey, TraceStore};
use paxsim_machine::sim::simulate;
use paxsim_predict::{predict_program, profile_program};

struct Point {
    kernel: &'static str,
    config: String,
    exact: f64,
    predicted: f64,
}

impl Point {
    fn rel_err(&self) -> f64 {
        (self.predicted - self.exact).abs() / self.exact
    }
}

fn measure(store: &TraceStore, kernel: &'static str, config: &HwConfig) -> Point {
    let spec = StudySpec::new(kernel, &config.name);
    let resolved = spec.resolve().expect("gate spec resolves");
    let opts = resolved.options();
    let trace = store
        .try_get(TraceKey {
            kernel: resolved.kernel,
            class: resolved.class,
            nthreads: resolved.config.threads,
            schedule: resolved.schedule,
        })
        .expect("trace builds");
    let (cycles, _) = run_trials_with(&opts, &trace, &resolved.config, &|jobs| {
        simulate(&opts.machine, jobs)
    });
    let exact = cycles.iter().sum::<f64>() / cycles.len() as f64;

    let profile = profile_program(&trace, opts.machine.l1d.line as u64);
    let predicted = predict_program(&profile, &opts.machine, &resolved.config.contexts);

    Point {
        kernel,
        config: config.name.clone(),
        exact,
        predicted: predicted.wall_cycles,
    }
}

fn p95(sorted: &[f64]) -> f64 {
    let idx = ((sorted.len() as f64) * 0.95).ceil() as usize;
    sorted[idx.saturating_sub(1).min(sorted.len() - 1)]
}

#[test]
fn wall_clock_error_within_declared_bound() {
    let store = TraceStore::new();
    let mut points = Vec::new();
    for kernel in ["cg", "ep", "mg"] {
        for config in all_configs() {
            points.push(measure(&store, kernel, &config));
        }
    }
    let mut errs: Vec<f64> = points.iter().map(Point::rel_err).collect();
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for p in &points {
        eprintln!(
            "fidelity-gate {:>2} {:<12} exact {:>14.0} predicted {:>14.0} rel_err {:>6.3}",
            p.kernel,
            p.config,
            p.exact,
            p.predicted,
            p.rel_err()
        );
    }
    let p95_err = p95(&errs);
    eprintln!(
        "fidelity-gate p95 relative wall error {:.3} over {} points",
        p95_err,
        errs.len()
    );
    assert!(
        p95_err <= 0.25,
        "p95 relative wall-clock error {p95_err:.3} exceeds the declared 25% bound"
    );
}
