//! The gather-window request batcher: compatible concurrent requests
//! merge into one shared sweep execution.
//!
//! [`Inflight`](paxsim_core::inflight::Inflight) collapses *identical*
//! concurrent requests; this layer collapses *compatible* ones — requests
//! whose resolved specs share everything except the sweep coordinates
//! (kernel, Table 1 configuration) and so can run as cells of one
//! [`pool`](paxsim_core::pool) sweep under one admission-gate pass. An
//! autotuner or a dashboard refresh that fans 30 points of one study
//! across 30 connections costs one gate permit and one scoped thread
//! pool, not 30.
//!
//! Mechanics: the first submitter for a [group key](crate::service) opens
//! a *group* and becomes its **leader**; the leader sleeps the gather
//! window while compatible submitters append themselves as **members**.
//! When the window closes the leader atomically takes the group (removing
//! it from the table so later submitters start a fresh one), executes the
//! batch through the closure it was given, and distributes the per-item
//! results: element `i` of the executor's output goes to the submitter of
//! item `i`. Members block on the group's condvar — never holding any
//! batcher lock — so a member waiting on a leader can deadlock only if
//! the executor hangs, and the executor runs under the pool's watchdog
//! deadline.
//!
//! A zero window makes `submit` a pure pass-through (the executor runs
//! immediately on a one-item batch, no sleep, no group table), which is
//! both the low-latency configuration and the reference behavior the
//! batched path is differentially tested against.
//!
//! **Poison recovery:** a panicking leader executor must never strand its
//! members. The leader runs the batch under `catch_unwind`; on panic it
//! marks the group `Poisoned` and wakes everyone, and every rider —
//! leader included — re-runs its own item as an individual batch of one
//! ([`Role::Retried`]). Each item computes independently, so the retry
//! result is byte-identical to what the batch would have produced.
//!
//! The batcher is generic and knows nothing about specs, caches, or
//! gates: correctness of *merging* (why a batched result is byte-identical
//! to an unbatched one) is argued where the executor is defined
//! (`service.rs` and DESIGN.md §13) — each item's cell computes
//! independently from its own resolved spec, so batching changes only
//! *when* a computation runs, never *what* it computes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// How a submission travelled through the batcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// This call opened the group, gathered `size` items (including its
    /// own), and ran the executor.
    Led { size: usize },
    /// This call joined an open group of final size `size` and received
    /// its slot of the leader's execution.
    Joined { size: usize },
    /// This call's batch execution panicked; the call re-ran its own item
    /// as an individual batch of one and got that result instead.
    Retried,
}

impl Role {
    /// Final size of the batch this submission rode in.
    pub fn size(&self) -> usize {
        match *self {
            Role::Led { size } | Role::Joined { size } => size,
            Role::Retried => 1,
        }
    }
}

enum GroupState<I, R> {
    /// Accepting members; the leader's window is still open.
    Gathering(Vec<I>),
    /// The leader took the items and is executing.
    Running,
    /// Per-member results, slot `i` for the submitter of item `i`
    /// (`None` once taken — each slot is consumed exactly once).
    Done(Vec<Option<R>>),
    /// The leader's executor panicked. Every waiter re-runs its own item
    /// individually instead of hanging on results that will never come.
    Poisoned,
}

struct Group<I, R> {
    state: Mutex<GroupState<I, R>>,
    cv: Condvar,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The batching table. `I` is the per-request item (the serve daemon
/// submits resolved specs), `R` the per-request result.
pub struct Batcher<I, R> {
    window: Duration,
    groups: Mutex<HashMap<u64, Arc<Group<I, R>>>>,
    batches: AtomicU64,
    merged: AtomicU64,
    poisoned: AtomicU64,
}

impl<I, R> Batcher<I, R> {
    /// A batcher with the given gather window. `Duration::ZERO` disables
    /// grouping entirely: every submission executes immediately as a
    /// batch of one.
    pub fn new(window: Duration) -> Self {
        Batcher {
            window,
            groups: Mutex::new(HashMap::new()),
            batches: AtomicU64::new(0),
            merged: AtomicU64::new(0),
            poisoned: AtomicU64::new(0),
        }
    }

    /// The configured gather window.
    pub fn window(&self) -> Duration {
        self.window
    }

    /// Batches executed (each one executor call).
    pub fn batches(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Requests that rode another request's batch (Σ over batches of
    /// `size - 1`) — the "work saved" number the load generator reports
    /// as the merge rate.
    pub fn merged(&self) -> u64 {
        self.merged.load(Ordering::Relaxed)
    }

    /// Groups currently gathering (a point-in-time gauge).
    pub fn open_groups(&self) -> usize {
        lock(&self.groups).len()
    }

    /// Batches whose leader executor panicked; every rider (leader
    /// included) re-ran its item individually.
    pub fn poisoned(&self) -> u64 {
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Submit one item under `key`; compatible items share a key.
    /// Returns this item's result plus the [`Role`] it played.
    ///
    /// `exec` runs once per *batch* (the leader's copy); it receives the
    /// gathered items and must return exactly one result per item, in
    /// order. If the leader's `exec` panics the group is **poisoned**:
    /// every rider — leader and members alike — re-runs its own item as
    /// an individual batch of one through its own `exec` copy, so nobody
    /// hangs on results that will never come. A panic from that
    /// *individual* run propagates to the caller (the serve worker's
    /// isolation boundary turns it into a typed reply).
    pub fn submit<F>(&self, key: u64, item: I, mut exec: F) -> (R, Role)
    where
        I: Clone,
        F: FnMut(Vec<I>) -> Vec<R>,
    {
        if self.window.is_zero() {
            self.batches.fetch_add(1, Ordering::Relaxed);
            let mut results = exec(vec![item]);
            debug_assert_eq!(results.len(), 1, "executor must map items 1:1");
            return (
                results.pop().expect("one item in, one result out"),
                Role::Led { size: 1 },
            );
        }
        let group = loop {
            let mut groups = lock(&self.groups);
            match groups.get(&key) {
                Some(g) => {
                    let g = g.clone();
                    // Lock order is always groups → state (here) or state
                    // alone (waiters); the leader's take below also nests
                    // groups → state, so there is no cycle. Because the
                    // leader removes the map entry *before* leaving
                    // `Gathering`, an entry found under the groups lock is
                    // always still gathering — the retry is pure defense.
                    let mut st = lock(&g.state);
                    if let GroupState::Gathering(items) = &mut *st {
                        items.push(item.clone());
                        let slot = items.len() - 1;
                        drop(st);
                        drop(groups);
                        return match self.wait(&g, slot) {
                            Ok(done) => done,
                            // Poisoned batch: recover by running our own
                            // item alone — the member kept its clone.
                            Err(Poisoned) => (self.solo(item, &mut exec), Role::Retried),
                        };
                    }
                    drop(st);
                    drop(groups);
                    std::thread::yield_now();
                    continue;
                }
                None => {
                    let g = Arc::new(Group {
                        state: Mutex::new(GroupState::Gathering(vec![item.clone()])),
                        cv: Condvar::new(),
                    });
                    groups.insert(key, g.clone());
                    break g;
                }
            }
        };
        // Leader: hold the window open, then take the batch.
        std::thread::sleep(self.window);
        let items = {
            let mut groups = lock(&self.groups);
            groups.remove(&key);
            let mut st = lock(&group.state);
            match std::mem::replace(&mut *st, GroupState::Running) {
                GroupState::Gathering(items) => items,
                _ => unreachable!("only the leader closes its group"),
            }
        };
        let size = items.len();
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| exec(items)));
        let batch = match out {
            Ok(batch) => batch,
            Err(_) => {
                // Poison the group *before* doing anything else so every
                // member wakes and recovers even if our own retry panics.
                self.poisoned.fetch_add(1, Ordering::Relaxed);
                *lock(&group.state) = GroupState::Poisoned;
                group.cv.notify_all();
                return (self.solo(item, &mut exec), Role::Retried);
            }
        };
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.merged.fetch_add(size as u64 - 1, Ordering::Relaxed);
        let mut results: Vec<Option<R>> = batch.into_iter().map(Some).collect();
        assert_eq!(results.len(), size, "executor must map items 1:1");
        let mine = results[0].take().expect("leader owns slot 0");
        *lock(&group.state) = GroupState::Done(results);
        group.cv.notify_all();
        (mine, Role::Led { size })
    }

    /// Run one item as its own batch — the poison-recovery path.
    fn solo<F>(&self, item: I, exec: &mut F) -> R
    where
        F: FnMut(Vec<I>) -> Vec<R>,
    {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let mut results = exec(vec![item]);
        debug_assert_eq!(results.len(), 1, "executor must map items 1:1");
        results.pop().expect("one item in, one result out")
    }

    fn wait(&self, group: &Group<I, R>, slot: usize) -> Result<(R, Role), Poisoned> {
        let mut st = lock(&group.state);
        loop {
            match &mut *st {
                GroupState::Done(results) => {
                    let size = results.len();
                    let r = results[slot]
                        .take()
                        .expect("each member consumes its slot exactly once");
                    return Ok((r, Role::Joined { size }));
                }
                GroupState::Poisoned => return Err(Poisoned),
                _ => st = group.cv.wait(st).unwrap_or_else(|e| e.into_inner()),
            }
        }
    }
}

/// Marker: the waited-on batch's executor panicked.
struct Poisoned;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    #[test]
    fn zero_window_is_pass_through() {
        let b: Batcher<u32, u32> = Batcher::new(Duration::ZERO);
        let execs = AtomicUsize::new(0);
        let (r, role) = b.submit(1, 5, |items| {
            execs.fetch_add(1, Ordering::SeqCst);
            assert_eq!(items, vec![5]);
            vec![50]
        });
        assert_eq!((r, role), (50, Role::Led { size: 1 }));
        assert_eq!(execs.load(Ordering::SeqCst), 1);
        assert_eq!(b.batches(), 1);
        assert_eq!(b.merged(), 0);
        assert_eq!(b.open_groups(), 0);
    }

    #[test]
    fn concurrent_compatible_submissions_merge_into_one_exec() {
        let b: Batcher<u32, u32> = Batcher::new(Duration::from_millis(60));
        let execs = AtomicUsize::new(0);
        let gate = Barrier::new(4);
        let results: Vec<(u32, Role)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let (b, execs, gate) = (&b, &execs, &gate);
                    scope.spawn(move || {
                        gate.wait();
                        b.submit(7, i, |items| {
                            execs.fetch_add(1, Ordering::SeqCst);
                            items.iter().map(|x| x * 10).collect()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(execs.load(Ordering::SeqCst), 1, "one batch, one exec");
        assert_eq!(b.batches(), 1);
        assert_eq!(b.merged(), 3);
        let leaders = results
            .iter()
            .filter(|(_, r)| matches!(r, Role::Led { .. }))
            .count();
        assert_eq!(leaders, 1, "exactly one leader");
        for (r, role) in &results {
            assert_eq!(r % 10, 0, "every member got a result");
            assert_eq!(role.size(), 4);
        }
        // Demux is positional: each submitter got *its own* item back.
        let mut got: Vec<u32> = results.iter().map(|(r, _)| r / 10).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert_eq!(b.open_groups(), 0);
    }

    #[test]
    fn distinct_keys_never_merge() {
        let b: Batcher<u32, u32> = Batcher::new(Duration::from_millis(20));
        std::thread::scope(|scope| {
            for k in 0..3u64 {
                let b = &b;
                scope.spawn(move || {
                    let (r, role) = b.submit(k, k as u32, |items| items);
                    assert_eq!(r, k as u32);
                    assert_eq!(role, Role::Led { size: 1 });
                });
            }
        });
        assert_eq!(b.batches(), 3);
        assert_eq!(b.merged(), 0);
    }

    #[test]
    fn submissions_after_the_window_start_a_fresh_batch() {
        let b: Batcher<u32, u32> = Batcher::new(Duration::from_millis(10));
        let (_, first) = b.submit(9, 1, |items| items);
        let (_, second) = b.submit(9, 2, |items| items);
        assert_eq!(first, Role::Led { size: 1 });
        assert_eq!(second, Role::Led { size: 1 });
        assert_eq!(b.batches(), 2);
    }

    #[test]
    fn per_item_results_survive_non_clone_types() {
        // R has no Clone bound: each slot is moved out exactly once.
        struct Opaque(u32);
        let b: Batcher<u32, Opaque> = Batcher::new(Duration::ZERO);
        let (r, _) = b.submit(1, 3, |items| items.into_iter().map(Opaque).collect());
        assert_eq!(r.0, 3);
    }

    #[test]
    fn leader_panic_poisons_group_and_everyone_retries_individually() {
        // The first (batched) execution panics; every rider must recover
        // by re-running its own item alone, with the right result, and
        // nobody may hang.
        let b: Batcher<u32, u32> = Batcher::new(Duration::from_millis(60));
        let batch_execs = AtomicUsize::new(0);
        let gate = Barrier::new(4);
        let results: Vec<(u32, Role)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    let (b, batch_execs, gate) = (&b, &batch_execs, &gate);
                    scope.spawn(move || {
                        gate.wait();
                        b.submit(7, i, |items| {
                            if items.len() > 1 {
                                batch_execs.fetch_add(1, Ordering::SeqCst);
                                panic!("injected batch executor fault");
                            }
                            items.iter().map(|x| x * 10).collect()
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            batch_execs.load(Ordering::SeqCst),
            1,
            "exactly one batched execution panicked"
        );
        assert_eq!(b.poisoned(), 1);
        // Every rider recovered individually with its own result.
        let mut got: Vec<u32> = results.iter().map(|(r, _)| r / 10).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        for (_, role) in &results {
            assert_eq!(*role, Role::Retried);
        }
        assert_eq!(b.open_groups(), 0);
        // The table is healthy afterwards: a fresh submission works.
        let (r, _) = b.submit(7, 9, |items| items.iter().map(|x| x * 10).collect());
        assert_eq!(r, 90);
    }

    #[test]
    fn solo_submitter_leader_panic_retries_itself() {
        // A one-rider group whose batch exec panics: the leader itself
        // recovers via the individual path.
        let b: Batcher<u32, u32> = Batcher::new(Duration::from_millis(5));
        let first = AtomicUsize::new(0);
        let (r, role) = b.submit(3, 4, |items| {
            if first.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected batch executor fault");
            }
            items.iter().map(|x| x + 1).collect()
        });
        assert_eq!((r, role), (5, Role::Retried));
        assert_eq!(b.poisoned(), 1);
    }
}
