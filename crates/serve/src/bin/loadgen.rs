//! `paxsim-loadgen` — loopback load generator and scaling benchmark for
//! the paxsim-serve daemon.
//!
//! ```text
//! paxsim-loadgen [--connections N] [--requests N] [--quick] [--chaos]
//! ```
//!
//! Stands a full in-process server up (reactor front end, worker pool,
//! batcher, sharded cache) on a loopback TCP port and drives it through
//! two phases:
//!
//! 1. **Cold / batching** — a grid of compatible simulate requests
//!    (kernels × configurations, identical study parameters) fired
//!    concurrently from one connection per spec, with a nonzero gather
//!    window. Compatible misses must merge into shared sweeps
//!    (`merged > 0`).
//! 2. **Hot / throughput** — the now-cached grid round-robined over
//!    `--connections` persistent pipelined connections for `--requests`
//!    total requests, measuring sustained coalesced requests/sec with
//!    p50/p99 latency.
//!
//! Then a **predicted-tier** pass: the same grid at
//! `fidelity=predicted`, cold (every pair's first prediction is
//! sentinel-audited against the cached exact records) then hot. The
//! pass asserts the tier's contract — predictions never enter the
//! batcher, and model evaluation stays under 100 µs server-side — and
//! records wire latency plus server-side evaluation cost alongside the
//! exact tier's numbers in `BENCH_serve.json`.
//!
//! Then an **autotune** pass: one budgeted `op=tune` search over a small
//! config × schedule grid, then an identical repeat. The pass asserts
//! the endpoint's contract — a search never enters the batcher, books no
//! simulate traffic (the conservation envelope below stays exact), and a
//! finished search replays byte-identical from its own cache — and
//! records the winner, search provenance, and both wall times in
//! `BENCH_serve.json`.
//!
//! With `--chaos` a third phase soaks the server under an injected fault
//! plan — connection kills every ~97 dispatched frames plus worker
//! panics on ~1% of jobs — using a **self-healing client**: every
//! dropped connection is reopened and the request resent (safe: the
//! content hash is the idempotency key, so a resend dedupes against the
//! cache and single-flight table). The phase asserts zero hung requests
//! (every send gets an answer within a read timeout), every request
//! eventually answered `ok`, and the conservation law intact *by the
//! server's own count* (`Σ shard hits + Σ shard misses ==
//! simulate_requests + baseline_fetches` — resends are extra simulate
//! requests, and the law must absorb them exactly).
//!
//! Afterwards it scrapes `op=stats`, checks the cross-shard conservation
//! law (`Σ shard hits + Σ shard misses == simulate requests + baseline
//! fetches`), drains the server gracefully, and — outside `--quick` —
//! writes `BENCH_serve.json` at the workspace root so successive PRs
//! compare like for like (including chaos/shed/retry counters when the
//! chaos phase ran). Any violated invariant (reply not ok, zero merges,
//! broken conservation, hung request, failed drain) exits nonzero, which
//! lets `ci.sh` use `--quick --chaos` as the serve chaos smoke.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use paxsim_serve::{ServeConfig, Server, Service};
use serde::Value;

/// The request grid: every pair is compatible with every other (same
/// class, trials, jitter, schedule, machine, no deadline), so the cold
/// phase can merge across the full grid.
const KERNELS: [&str; 4] = ["ep", "is", "cg", "bt"];
const CONFIGS: [&str; 3] = ["Serial", "CMP", "CMT"];

fn usage() -> ! {
    eprintln!("usage: paxsim-loadgen [--connections N] [--requests N] [--quick] [--chaos]");
    std::process::exit(2);
}

fn grid() -> Vec<String> {
    let mut lines = Vec::new();
    for k in KERNELS {
        for c in CONFIGS {
            lines.push(format!(
                r#"{{"op":"simulate","kernel":"{k}","config":"{c}"}}"#
            ));
        }
    }
    lines
}

/// One blocking round trip on a fresh connection.
fn roundtrip(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Cold phase: one connection per grid spec, all fired as close to
/// simultaneously as the OS allows. Returns wall ms.
fn cold_phase(addr: &str, lines: &[String]) -> f64 {
    let barrier = std::sync::Barrier::new(lines.len());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for line in lines {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let reply = roundtrip(addr, line).expect("cold request I/O");
                assert!(
                    reply.contains("\"ok\":true"),
                    "cold reply must be ok: {reply}"
                );
            });
        }
    });
    t0.elapsed().as_secs_f64() * 1e3
}

/// Hot phase: `connections` persistent connections, each sending its
/// share of `total` requests round-robined over the (now cached) grid.
/// Returns (sorted latencies ms, wall seconds).
fn hot_phase(addr: &str, lines: &[String], connections: usize, total: usize) -> (Vec<f64>, f64) {
    let per = total / connections;
    let extra = total % connections;
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let count = per + usize::from(c < extra);
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("hot connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(stream);
                    let mut lat = Vec::with_capacity(count);
                    let mut reply = String::new();
                    for i in 0..count {
                        let line = &lines[(c + i) % lines.len()];
                        let t = Instant::now();
                        reader.get_mut().write_all(line.as_bytes()).expect("write");
                        reader.get_mut().write_all(b"\n").expect("write");
                        reply.clear();
                        reader.read_line(&mut reply).expect("read");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        assert!(
                            reply.contains("\"ok\":true"),
                            "hot reply must be ok: {reply}"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("hot client"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    // total_cmp, not partial_cmp().expect(): a NaN latency must not
    // panic the report after the run already succeeded.
    latencies.sort_by(f64::total_cmp);
    (latencies, wall)
}

/// Chaos soak: `total` requests over `connections` self-healing clients
/// while the installed fault plan kills connections and panics workers.
///
/// Client discipline per request: send, then read with a hard timeout.
/// * A reply that is `ok` finishes the request.
/// * EOF / reset / short line (connection killed before the reply made
///   it out) → reconnect and **resend the same line**; idempotent by
///   content hash, so the healed request serves from cache or joins the
///   in-flight computation.
/// * A typed `panic` / `overloaded` / `shed` rejection → retry on the
///   same connection (the daemon stayed up; the request was refused).
/// * A read timeout is a **hung request** — an instant failure; the
///   whole point of typed rejections and worker isolation is that the
///   daemon never swallows a request silently.
///
/// Returns total client resends (transport heals + rejection retries).
fn chaos_phase(addr: &str, lines: &[String], connections: usize, total: usize) -> usize {
    let per = total / connections;
    let extra = total % connections;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let count = per + usize::from(c < extra);
                scope.spawn(move || {
                    let connect = || -> BufReader<TcpStream> {
                        for attempt in 0..100 {
                            match TcpStream::connect(addr) {
                                Ok(s) => {
                                    s.set_nodelay(true).expect("nodelay");
                                    s.set_read_timeout(Some(Duration::from_secs(10)))
                                        .expect("read timeout");
                                    return BufReader::new(s);
                                }
                                Err(_) if attempt < 99 => {
                                    std::thread::sleep(Duration::from_millis(10));
                                }
                                Err(e) => panic!("chaos reconnect failed: {e}"),
                            }
                        }
                        unreachable!("loop returns or panics");
                    };
                    let mut reader = connect();
                    let mut reply = String::new();
                    let mut resends = 0usize;
                    for i in 0..count {
                        // Mostly cached grid traffic (answered inline by
                        // the reactor), with every 20th request a *fresh*
                        // spec — a never-seen jitter — so a steady ~5% of
                        // the soak reaches the compute workers and the
                        // worker-panic fault has jobs to land on.
                        let fresh;
                        let line: &str = if i % 20 == 0 {
                            fresh = format!(
                                r#"{{"op":"simulate","kernel":"{}","config":"{}","jitter":{}}}"#,
                                KERNELS[c % KERNELS.len()],
                                CONFIGS[c % CONFIGS.len()],
                                10_000 + i
                            );
                            &fresh
                        } else {
                            &lines[(c + i) % lines.len()]
                        };
                        let mut attempts = 0u32;
                        loop {
                            attempts += 1;
                            assert!(
                                attempts <= 12,
                                "request answered neither ok nor retryable after 12 attempts: {line}"
                            );
                            let sent = reader
                                .get_mut()
                                .write_all(line.as_bytes())
                                .and_then(|()| reader.get_mut().write_all(b"\n"));
                            if sent.is_err() {
                                resends += 1;
                                reader = connect();
                                continue;
                            }
                            reply.clear();
                            match reader.read_line(&mut reply) {
                                // Clean close or short line: the kill beat
                                // the reply out the door. Heal and resend.
                                Ok(0) => {
                                    resends += 1;
                                    reader = connect();
                                    continue;
                                }
                                Ok(_) if !reply.ends_with('\n') => {
                                    resends += 1;
                                    reader = connect();
                                    continue;
                                }
                                Ok(_) => {}
                                Err(e)
                                    if matches!(
                                        e.kind(),
                                        std::io::ErrorKind::WouldBlock
                                            | std::io::ErrorKind::TimedOut
                                    ) =>
                                {
                                    panic!("hung request: no reply within 10 s for {line}");
                                }
                                Err(_) => {
                                    resends += 1;
                                    reader = connect();
                                    continue;
                                }
                            }
                            if reply.contains("\"ok\":true") {
                                break;
                            }
                            let retryable = ["\"error\":\"panic\"", "\"error\":\"overloaded\"", "\"error\":\"shed\""]
                                .iter()
                                .any(|cat| reply.contains(cat));
                            assert!(retryable, "chaos reply must be ok or retryable: {reply}");
                            resends += 1;
                        }
                    }
                    resends
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos client"))
            .sum()
    })
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let mut connections: usize = 16;
    let mut requests: usize = 60_000;
    let mut quick = std::env::var_os("PAXSIM_BENCH_QUICK").is_some_and(|v| v != "0");
    let mut chaos = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--connections" => connections = num("--connections").max(1),
            "--requests" => requests = num("--requests").max(1),
            "--quick" => quick = true,
            "--chaos" => chaos = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if quick {
        connections = connections.min(8);
        requests = requests.min(6_000);
    }
    // Cold and hot phases measure the clean server; the guard keeps any
    // concurrent fault plan out. It must drop before the chaos phase —
    // `with_plan` takes the same non-reentrant lock.
    let quiesced = paxsim_core::faultinject::quiesced();

    let cache_dir: PathBuf =
        std::env::temp_dir().join(format!("paxsim_loadgen_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let service = Arc::new(
        Service::open(ServeConfig {
            cache_dir: cache_dir.clone(),
            // Wide enough that the barrier-released cold grid lands in
            // one gather window even on a loaded CI host.
            batch_window_ms: 50,
            ..ServeConfig::default()
        })
        .expect("open service"),
    );
    let server = Server::start(service.clone(), Some("127.0.0.1:0"), None).expect("start server");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    let lines = grid();
    eprintln!(
        "loadgen: {} specs cold (window 50 ms), then {requests} requests over {connections} connections",
        lines.len()
    );

    // Phase 1: cold grid, concurrent, must merge.
    let cold_ms = cold_phase(&addr, &lines);
    let batches = service.batches();
    let merged = service.batch_merged();
    let merge_rate = merged as f64 / lines.len() as f64;
    eprintln!(
        "loadgen: cold grid in {cold_ms:.1} ms — {batches} batches, {merged} merged ({:.0}% of requests rode a shared sweep)",
        merge_rate * 100.0
    );
    assert!(
        merged > 0,
        "compatible concurrent cold misses must merge (batches = {batches})"
    );

    // Phase 2: hot sustained throughput.
    let (latencies, wall) = hot_phase(&addr, &lines, connections, requests);
    let rps = latencies.len() as f64 / wall;
    let p50 = percentile(&latencies, 0.5);
    let p99 = percentile(&latencies, 0.99);
    eprintln!(
        "loadgen: hot {} requests in {wall:.2} s — {rps:.0} req/s, p50 {p50:.3} ms, p99 {p99:.3} ms",
        latencies.len()
    );

    // Phase 2.5: predicted tier. The same grid at fidelity=predicted:
    // cold predictions (each pair's first is sentinel-audited against
    // the already-cached exact records), then a sustained hot run. The
    // tier's contract is asserted here: it never batches, and model
    // evaluation stays under 100 µs server-side.
    let pred_lines: Vec<String> = lines
        .iter()
        .map(|l| l.replacen('}', r#","fidelity":"predicted"}"#, 1))
        .collect();
    let batches_before = service.batches();
    let pred_cold_ms = cold_phase(&addr, &pred_lines);
    assert_eq!(
        service.batches(),
        batches_before,
        "the predicted tier must never enter the batcher"
    );
    let pred_requests = if quick { 2_000 } else { 20_000 };
    let (pred_lat, pred_wall) = hot_phase(&addr, &pred_lines, connections, pred_requests);
    let pred_rps = pred_lat.len() as f64 / pred_wall;
    let pred_p50 = percentile(&pred_lat, 0.5);
    let pred_p99 = percentile(&pred_lat, 0.99);
    let eval = service.predict_latencies_ms();
    assert!(
        !eval.is_empty(),
        "cold predictions must have evaluated the model"
    );
    let eval_mean = eval.iter().sum::<f64>() / eval.len() as f64;
    let eval_max = eval.iter().cloned().fold(0.0f64, f64::max);
    assert!(
        eval_mean < 0.1,
        "predicted answers must cost < 100 µs server-side (mean {:.1} µs over {} evals)",
        eval_mean * 1e3,
        eval.len()
    );
    let audits = service.predict_auditor().audits();
    let quarantined = service.predict_auditor().quarantined_pairs();
    let fallbacks = service.predict_auditor().fallbacks();
    let predict_error_p95 = service.predict_auditor().error_p95();
    eprintln!(
        "loadgen: predicted cold grid in {pred_cold_ms:.1} ms, hot {} requests in {pred_wall:.2} s \
         — {pred_rps:.0} req/s, p50 {pred_p50:.3} ms wire, model eval mean {:.1} µs / max {:.1} µs, \
         {audits} audits, {quarantined} pairs quarantined, error p95 {}",
        pred_lat.len(),
        eval_mean * 1e3,
        eval_max * 1e3,
        predict_error_p95.map_or("n/a".to_string(), |e| format!("{e:.3}")),
    );
    assert!(audits > 0, "every pair's first prediction must be audited");

    // Phase 2.7: autotune. One budgeted search over a 2x2 grid — the
    // static cells are warm from phase 1, the dynamic cells compute
    // fresh — then an identical repeat that must replay byte-identical
    // from the finished-search cache without touching the engine.
    const TUNE: &str = r#"{"op":"tune","kernel":"ep","configs":["CMP","CMT"],"schedules":["static","dynamic,2"],"budget":16}"#;
    let batches_before_tune = service.batches();
    let t_tune = Instant::now();
    let tune_cold = roundtrip(&addr, TUNE).expect("tune I/O");
    let tune_search_ms = t_tune.elapsed().as_secs_f64() * 1e3;
    assert!(
        tune_cold.contains("\"ok\":true"),
        "tune reply must be ok: {tune_cold}"
    );
    let t_tune = Instant::now();
    let tune_repeat = roundtrip(&addr, TUNE).expect("tune I/O");
    let tune_replay_ms = t_tune.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        tune_cold, tune_repeat,
        "a finished search must replay byte-identical from cache"
    );
    assert_eq!(
        service.batches(),
        batches_before_tune,
        "a tune search must never enter the batcher"
    );
    assert_eq!(
        (service.tunes(), service.tune_hits()),
        (2, 1),
        "the repeat must be a finished-search cache hit"
    );
    let tune_v = serde_json::parse(&tune_cold).expect("tune reply parses");
    let tune_best = tune_v["tune"]["best_config"]
        .as_str()
        .unwrap_or("?")
        .to_string();
    let tune_best_schedule = tune_v["tune"]["best_schedule"]
        .as_str()
        .unwrap_or("?")
        .to_string();
    let tune_speedup = tune_v["tune"]["speedup"].as_f64().unwrap_or(f64::NAN);
    let tune_grid = tune_v["tune"]["grid"].as_u64().unwrap_or(0);
    let tune_evaluated = tune_v["tune"]["evaluated"].as_u64().unwrap_or(0);
    let tune_spent = tune_v["tune"]["budget_spent"].as_u64().unwrap_or(0);
    let tune_rounds = match &tune_v["tune"]["rounds"] {
        Value::Array(a) => a.len() as u64,
        _ => 0,
    };
    eprintln!(
        "loadgen: tune {tune_grid}-cell grid in {tune_search_ms:.1} ms — best {tune_best} \
         / {tune_best_schedule}, speedup {tune_speedup:.2}, {tune_evaluated} cells scored \
         over {tune_rounds} rounds ({tune_spent} budget), cached replay {tune_replay_ms:.3} ms"
    );

    // Phase 3 (optional): chaos soak under an injected fault plan.
    drop(quiesced);
    let chaos_report = if chaos {
        let chaos_requests = if quick { 1_500 } else { 12_000 };
        let t0 = Instant::now();
        // Budgets are effectively unlimited; the periods set the rates:
        // one connection kill per ~97 dispatched frames, one worker panic
        // per 7 jobs. Only cache-miss requests become worker jobs (~5% of
        // the soak), so the panic rate lands near 1% of requests overall.
        // Injected worker panics are caught and healed by design; keep
        // their backtraces out of the log so real failures stand out.
        let prev_hook = std::sync::Arc::new(std::panic::take_hook());
        let filter_prev = prev_hook.clone();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                filter_prev(info);
            }
        }));
        let resends = paxsim_core::faultinject::with_plan(
            "serve-conn-kill:97:1000000, serve-worker-panic:7:1000000",
            || chaos_phase(&addr, &lines, connections.min(8), chaos_requests),
        );
        drop(std::panic::take_hook());
        drop(prev_hook);
        let wall = t0.elapsed().as_secs_f64();
        let (worker_panics, conn_kills, _partial) = paxsim_serve::chaos::fired();
        eprintln!(
            "loadgen: chaos {chaos_requests} requests in {wall:.2} s — {conn_kills} connections \
             killed, {worker_panics} worker panics injected, {resends} client heals/resends, \
             0 hung requests",
        );
        assert!(
            conn_kills > 0 && worker_panics > 0,
            "the chaos soak must actually fire faults (kills {conn_kills}, panics {worker_panics})"
        );
        Some((chaos_requests, resends, conn_kills, worker_panics, wall))
    } else {
        None
    };

    // Conservation across shards, scraped over the wire like any client.
    let stats_line = roundtrip(&addr, r#"{"op":"stats"}"#).expect("stats I/O");
    let stats = serde_json::parse(&stats_line).expect("stats parses");
    let shards = match &stats["cache"]["shards"] {
        Value::Array(a) => a.clone(),
        other => panic!("stats.cache.shards must be an array, got {other:?}"),
    };
    let field = |v: &Value, k: &str| v[k].as_u64().unwrap_or(0);
    let shard_hits: u64 = shards
        .iter()
        .map(|s| field(s, "mem_hits") + field(s, "disk_hits"))
        .sum();
    let shard_misses: u64 = shards.iter().map(|s| field(s, "misses")).sum();
    let baseline_fetches = stats["baseline_fetches"].as_u64().unwrap_or(0);
    // The law is checked against the *server's* own simulate count: with
    // chaos on, client resends are extra simulate requests the law must
    // absorb exactly. The client-side count is a lower-bound cross-check
    // (a killed connection's request may or may not have been dispatched
    // before the kill, so the server count can only be >=).
    let floor = (lines.len() + requests + pred_lines.len() + pred_requests) as u64;
    let client_sent = floor + chaos_report.map_or(0, |(n, heals, ..)| (n + heals) as u64);
    let simulate_requests = stats["simulate_requests"].as_u64().unwrap_or(0);
    assert!(
        simulate_requests >= floor && simulate_requests <= client_sent,
        "server simulate count {simulate_requests} outside client envelope [{floor}, {client_sent}]"
    );
    let conserved = shard_hits + shard_misses == simulate_requests + baseline_fetches;
    eprintln!(
        "loadgen: conservation {} — Σ shard hits {shard_hits} + misses {shard_misses} \
         vs requests {simulate_requests} + baselines {baseline_fetches}",
        if conserved { "holds" } else { "VIOLATED" }
    );
    assert!(
        conserved,
        "cross-shard conservation: {shard_hits} + {shard_misses} != {simulate_requests} + {baseline_fetches}"
    );
    let populated = shards
        .iter()
        .filter(|s| field(s, "mem_hits") + field(s, "disk_hits") + field(s, "misses") > 0)
        .count();
    assert!(
        populated > 1,
        "the grid must spread over more than one shard (got {populated})"
    );

    // Graceful drain: every reply flushed, every thread joined.
    let drained = server.shutdown(Duration::from_secs(30));
    assert!(drained, "server must drain cleanly inside the grace period");
    eprintln!("loadgen: drained cleanly");
    let _ = std::fs::remove_dir_all(&cache_dir);

    if quick {
        eprintln!("loadgen: quick mode, BENCH_serve.json left untouched");
        return;
    }

    let per_shard = Value::Array(
        shards
            .iter()
            .map(|s| {
                let hits = field(s, "mem_hits") + field(s, "disk_hits");
                let total = hits + field(s, "misses");
                obj(vec![
                    ("hits", Value::UInt(hits)),
                    ("misses", Value::UInt(field(s, "misses"))),
                    ("entries_disk", Value::UInt(field(s, "entries_disk"))),
                    (
                        "hit_rate",
                        Value::Float(if total > 0 {
                            hits as f64 / total as f64
                        } else {
                            0.0
                        }),
                    ),
                ])
            })
            .collect(),
    );
    let report = obj(vec![
        ("bench", Value::String("serve_load".into())),
        (
            "notes",
            Value::String(
                "Loopback TCP against the in-process reactor server. Cold phase: the \
                 kernels x configs grid fired concurrently through a 50 ms gather window \
                 (merged = requests that rode another request's sweep). Hot phase: the \
                 cached grid round-robined over persistent pipelined connections; rps is \
                 coalesced requests per second of wall clock. Conservation: sum of \
                 per-shard (hits + misses) equals simulate requests + baseline fetches, \
                 checked before every run of this report. drained = graceful shutdown \
                 flushed every reply and joined every thread inside the grace period."
                    .into(),
            ),
        ),
        ("connections", Value::UInt(connections as u64)),
        (
            "cold",
            obj(vec![
                ("specs", Value::UInt(lines.len() as u64)),
                ("wall_ms", Value::Float(cold_ms)),
                ("batches", Value::UInt(batches)),
                ("merged", Value::UInt(merged)),
                ("merge_rate", Value::Float(merge_rate)),
            ]),
        ),
        (
            "hot",
            obj(vec![
                ("requests", Value::UInt(latencies.len() as u64)),
                ("wall_s", Value::Float(wall)),
                ("rps", Value::Float(rps)),
                ("p50_ms", Value::Float(p50)),
                ("p99_ms", Value::Float(p99)),
            ]),
        ),
        (
            "predicted",
            obj(vec![
                ("requests", Value::UInt(pred_lat.len() as u64)),
                ("cold_wall_ms", Value::Float(pred_cold_ms)),
                ("wall_s", Value::Float(pred_wall)),
                ("rps", Value::Float(pred_rps)),
                ("p50_ms", Value::Float(pred_p50)),
                ("p99_ms", Value::Float(pred_p99)),
                ("model_eval_mean_us", Value::Float(eval_mean * 1e3)),
                ("model_eval_max_us", Value::Float(eval_max * 1e3)),
                ("audits", Value::UInt(audits as u64)),
                ("quarantined_pairs", Value::UInt(quarantined as u64)),
                ("fallbacks", Value::UInt(fallbacks as u64)),
                (
                    "error_p95",
                    predict_error_p95.map_or(Value::Null, Value::Float),
                ),
            ]),
        ),
        (
            "tune",
            obj(vec![
                ("grid", Value::UInt(tune_grid)),
                ("evaluated", Value::UInt(tune_evaluated)),
                ("rounds", Value::UInt(tune_rounds)),
                ("budget_spent", Value::UInt(tune_spent)),
                ("best_config", Value::String(tune_best.clone())),
                ("best_schedule", Value::String(tune_best_schedule.clone())),
                ("best_speedup", Value::Float(tune_speedup)),
                ("search_wall_ms", Value::Float(tune_search_ms)),
                ("cached_replay_ms", Value::Float(tune_replay_ms)),
            ]),
        ),
        (
            "conservation",
            obj(vec![
                ("shard_hits", Value::UInt(shard_hits)),
                ("shard_misses", Value::UInt(shard_misses)),
                ("simulate_requests", Value::UInt(simulate_requests)),
                ("baseline_fetches", Value::UInt(baseline_fetches)),
                ("holds", Value::Bool(conserved)),
            ]),
        ),
        ("shards", per_shard),
        ("drained", Value::Bool(drained)),
    ]);
    // Chaos/shed/retry counters ride along when the soak ran, so
    // successive PRs can compare resilience numbers like the perf ones.
    let report = match (report, chaos_report) {
        (Value::Object(mut fields), Some((requests, resends, kills, panics, wall))) => {
            fields.push((
                "chaos".to_string(),
                obj(vec![
                    ("requests", Value::UInt(requests as u64)),
                    ("wall_s", Value::Float(wall)),
                    ("conn_kills", Value::UInt(kills)),
                    ("worker_panics_injected", Value::UInt(panics)),
                    ("client_resends", Value::UInt(resends as u64)),
                    ("hung_requests", Value::UInt(0)),
                    ("shed", Value::UInt(service.shed())),
                    ("quarantine_trips", Value::UInt(service.breaker().trips())),
                    ("batch_poisoned", Value::UInt(service.batch_poisoned())),
                    (
                        "journal_put_failures",
                        Value::UInt(service.cache().put_failures()),
                    ),
                ]),
            ));
            Value::Object(fields)
        }
        (report, _) => report,
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
