//! `paxsim-loadgen` — loopback load generator and scaling benchmark for
//! the paxsim-serve daemon.
//!
//! ```text
//! paxsim-loadgen [--connections N] [--requests N] [--quick]
//! ```
//!
//! Stands a full in-process server up (reactor front end, worker pool,
//! batcher, sharded cache) on a loopback TCP port and drives it through
//! two phases:
//!
//! 1. **Cold / batching** — a grid of compatible simulate requests
//!    (kernels × configurations, identical study parameters) fired
//!    concurrently from one connection per spec, with a nonzero gather
//!    window. Compatible misses must merge into shared sweeps
//!    (`merged > 0`).
//! 2. **Hot / throughput** — the now-cached grid round-robined over
//!    `--connections` persistent pipelined connections for `--requests`
//!    total requests, measuring sustained coalesced requests/sec with
//!    p50/p99 latency.
//!
//! Afterwards it scrapes `op=stats`, checks the cross-shard conservation
//! law (`Σ shard hits + Σ shard misses == simulate requests + baseline
//! fetches`), drains the server gracefully, and — outside `--quick` —
//! writes `BENCH_serve.json` at the workspace root so successive PRs
//! compare like for like. Any violated invariant (reply not ok, zero
//! merges, broken conservation, failed drain) exits nonzero, which lets
//! `ci.sh` use `--quick` as the serve load smoke.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use paxsim_serve::{ServeConfig, Server, Service};
use serde::Value;

/// The request grid: every pair is compatible with every other (same
/// class, trials, jitter, schedule, machine, no deadline), so the cold
/// phase can merge across the full grid.
const KERNELS: [&str; 4] = ["ep", "is", "cg", "bt"];
const CONFIGS: [&str; 3] = ["Serial", "CMP", "CMT"];

fn usage() -> ! {
    eprintln!("usage: paxsim-loadgen [--connections N] [--requests N] [--quick]");
    std::process::exit(2);
}

fn grid() -> Vec<String> {
    let mut lines = Vec::new();
    for k in KERNELS {
        for c in CONFIGS {
            lines.push(format!(
                r#"{{"op":"simulate","kernel":"{k}","config":"{c}"}}"#
            ));
        }
    }
    lines
}

/// One blocking round trip on a fresh connection.
fn roundtrip(addr: &str, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reply = String::new();
    BufReader::new(stream).read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Cold phase: one connection per grid spec, all fired as close to
/// simultaneously as the OS allows. Returns wall ms.
fn cold_phase(addr: &str, lines: &[String]) -> f64 {
    let barrier = std::sync::Barrier::new(lines.len());
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for line in lines {
            let barrier = &barrier;
            scope.spawn(move || {
                barrier.wait();
                let reply = roundtrip(addr, line).expect("cold request I/O");
                assert!(
                    reply.contains("\"ok\":true"),
                    "cold reply must be ok: {reply}"
                );
            });
        }
    });
    t0.elapsed().as_secs_f64() * 1e3
}

/// Hot phase: `connections` persistent connections, each sending its
/// share of `total` requests round-robined over the (now cached) grid.
/// Returns (sorted latencies ms, wall seconds).
fn hot_phase(addr: &str, lines: &[String], connections: usize, total: usize) -> (Vec<f64>, f64) {
    let per = total / connections;
    let extra = total % connections;
    let t0 = Instant::now();
    let mut latencies: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let count = per + usize::from(c < extra);
                scope.spawn(move || {
                    let stream = TcpStream::connect(addr).expect("hot connect");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut reader = BufReader::new(stream);
                    let mut lat = Vec::with_capacity(count);
                    let mut reply = String::new();
                    for i in 0..count {
                        let line = &lines[(c + i) % lines.len()];
                        let t = Instant::now();
                        reader.get_mut().write_all(line.as_bytes()).expect("write");
                        reader.get_mut().write_all(b"\n").expect("write");
                        reply.clear();
                        reader.read_line(&mut reply).expect("read");
                        lat.push(t.elapsed().as_secs_f64() * 1e3);
                        assert!(
                            reply.contains("\"ok\":true"),
                            "hot reply must be ok: {reply}"
                        );
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("hot client"))
            .collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    (latencies, wall)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    let mut connections: usize = 16;
    let mut requests: usize = 60_000;
    let mut quick = std::env::var_os("PAXSIM_BENCH_QUICK").is_some_and(|v| v != "0");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> usize {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{flag} needs a number");
                usage()
            })
        };
        match arg.as_str() {
            "--connections" => connections = num("--connections").max(1),
            "--requests" => requests = num("--requests").max(1),
            "--quick" => quick = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if quick {
        connections = connections.min(8);
        requests = requests.min(6_000);
    }
    let _quiesced = paxsim_core::faultinject::quiesced();

    let cache_dir: PathBuf =
        std::env::temp_dir().join(format!("paxsim_loadgen_cache_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let service = Arc::new(
        Service::open(ServeConfig {
            cache_dir: cache_dir.clone(),
            // Wide enough that the barrier-released cold grid lands in
            // one gather window even on a loaded CI host.
            batch_window_ms: 50,
            ..ServeConfig::default()
        })
        .expect("open service"),
    );
    let server = Server::start(service.clone(), Some("127.0.0.1:0"), None).expect("start server");
    let addr = server.tcp_addr().expect("tcp bound").to_string();

    let lines = grid();
    eprintln!(
        "loadgen: {} specs cold (window 50 ms), then {requests} requests over {connections} connections",
        lines.len()
    );

    // Phase 1: cold grid, concurrent, must merge.
    let cold_ms = cold_phase(&addr, &lines);
    let batches = service.batches();
    let merged = service.batch_merged();
    let merge_rate = merged as f64 / lines.len() as f64;
    eprintln!(
        "loadgen: cold grid in {cold_ms:.1} ms — {batches} batches, {merged} merged ({:.0}% of requests rode a shared sweep)",
        merge_rate * 100.0
    );
    assert!(
        merged > 0,
        "compatible concurrent cold misses must merge (batches = {batches})"
    );

    // Phase 2: hot sustained throughput.
    let (latencies, wall) = hot_phase(&addr, &lines, connections, requests);
    let rps = latencies.len() as f64 / wall;
    let p50 = percentile(&latencies, 0.5);
    let p99 = percentile(&latencies, 0.99);
    eprintln!(
        "loadgen: hot {} requests in {wall:.2} s — {rps:.0} req/s, p50 {p50:.3} ms, p99 {p99:.3} ms",
        latencies.len()
    );

    // Conservation across shards, scraped over the wire like any client.
    let stats_line = roundtrip(&addr, r#"{"op":"stats"}"#).expect("stats I/O");
    let stats = serde_json::parse(&stats_line).expect("stats parses");
    let shards = match &stats["cache"]["shards"] {
        Value::Array(a) => a.clone(),
        other => panic!("stats.cache.shards must be an array, got {other:?}"),
    };
    let field = |v: &Value, k: &str| v[k].as_u64().unwrap_or(0);
    let shard_hits: u64 = shards
        .iter()
        .map(|s| field(s, "mem_hits") + field(s, "disk_hits"))
        .sum();
    let shard_misses: u64 = shards.iter().map(|s| field(s, "misses")).sum();
    let baseline_fetches = stats["baseline_fetches"].as_u64().unwrap_or(0);
    let simulate_requests = (lines.len() + requests) as u64;
    let conserved = shard_hits + shard_misses == simulate_requests + baseline_fetches;
    eprintln!(
        "loadgen: conservation {} — Σ shard hits {shard_hits} + misses {shard_misses} \
         vs requests {simulate_requests} + baselines {baseline_fetches}",
        if conserved { "holds" } else { "VIOLATED" }
    );
    assert!(
        conserved,
        "cross-shard conservation: {shard_hits} + {shard_misses} != {simulate_requests} + {baseline_fetches}"
    );
    let populated = shards
        .iter()
        .filter(|s| field(s, "mem_hits") + field(s, "disk_hits") + field(s, "misses") > 0)
        .count();
    assert!(
        populated > 1,
        "the grid must spread over more than one shard (got {populated})"
    );

    // Graceful drain: every reply flushed, every thread joined.
    let drained = server.shutdown(Duration::from_secs(30));
    assert!(drained, "server must drain cleanly inside the grace period");
    eprintln!("loadgen: drained cleanly");
    let _ = std::fs::remove_dir_all(&cache_dir);

    if quick {
        eprintln!("loadgen: quick mode, BENCH_serve.json left untouched");
        return;
    }

    let per_shard = Value::Array(
        shards
            .iter()
            .map(|s| {
                let hits = field(s, "mem_hits") + field(s, "disk_hits");
                let total = hits + field(s, "misses");
                obj(vec![
                    ("hits", Value::UInt(hits)),
                    ("misses", Value::UInt(field(s, "misses"))),
                    ("entries_disk", Value::UInt(field(s, "entries_disk"))),
                    (
                        "hit_rate",
                        Value::Float(if total > 0 {
                            hits as f64 / total as f64
                        } else {
                            0.0
                        }),
                    ),
                ])
            })
            .collect(),
    );
    let report = obj(vec![
        ("bench", Value::String("serve_load".into())),
        (
            "notes",
            Value::String(
                "Loopback TCP against the in-process reactor server. Cold phase: the \
                 kernels x configs grid fired concurrently through a 50 ms gather window \
                 (merged = requests that rode another request's sweep). Hot phase: the \
                 cached grid round-robined over persistent pipelined connections; rps is \
                 coalesced requests per second of wall clock. Conservation: sum of \
                 per-shard (hits + misses) equals simulate requests + baseline fetches, \
                 checked before every run of this report. drained = graceful shutdown \
                 flushed every reply and joined every thread inside the grace period."
                    .into(),
            ),
        ),
        ("connections", Value::UInt(connections as u64)),
        (
            "cold",
            obj(vec![
                ("specs", Value::UInt(lines.len() as u64)),
                ("wall_ms", Value::Float(cold_ms)),
                ("batches", Value::UInt(batches)),
                ("merged", Value::UInt(merged)),
                ("merge_rate", Value::Float(merge_rate)),
            ]),
        ),
        (
            "hot",
            obj(vec![
                ("requests", Value::UInt(latencies.len() as u64)),
                ("wall_s", Value::Float(wall)),
                ("rps", Value::Float(rps)),
                ("p50_ms", Value::Float(p50)),
                ("p99_ms", Value::Float(p99)),
            ]),
        ),
        (
            "conservation",
            obj(vec![
                ("shard_hits", Value::UInt(shard_hits)),
                ("shard_misses", Value::UInt(shard_misses)),
                ("simulate_requests", Value::UInt(simulate_requests)),
                ("baseline_fetches", Value::UInt(baseline_fetches)),
                ("holds", Value::Bool(conserved)),
            ]),
        ),
        ("shards", per_shard),
        ("drained", Value::Bool(drained)),
    ]);
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {}", path.display());
}
