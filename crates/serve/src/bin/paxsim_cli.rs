//! `paxsim-cli` — command-line client for the paxsim-serve daemon.
//!
//! ```text
//! paxsim-cli (--tcp ADDR | --unix PATH) simulate --kernel K --config C
//!            [--class T] [--trials N] [--jitter N] [--schedule S]
//!            [--deadline-ms N]
//! paxsim-cli (--tcp ADDR | --unix PATH) stats
//! paxsim-cli (--tcp ADDR | --unix PATH) metrics
//! paxsim-cli (--tcp ADDR | --unix PATH) raw '<json request line>'
//! ```
//!
//! Prints the daemon's reply line verbatim on stdout — except `metrics`,
//! which unpacks the reply's Prometheus exposition text so the output can
//! be piped straight to a scrape file. Exits 0 on an `"ok":true` reply,
//! 1 on an error reply, 2 on usage/connection problems.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use serde::Value;

fn usage() -> ! {
    eprintln!(
        "usage: paxsim-cli (--tcp ADDR | --unix PATH) <command>\n\
         commands:\n\
         \x20 simulate --kernel K --config C [--class T] [--trials N]\n\
         \x20          [--jitter N] [--schedule S] [--deadline-ms N]\n\
         \x20 stats\n\
         \x20 metrics\n\
         \x20 raw '<json>'"
    );
    std::process::exit(2);
}

fn roundtrip(conn: &str, line: &str) -> std::io::Result<String> {
    let send = |mut w: Box<dyn ReadWrite>| -> std::io::Result<String> {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()?;
        let mut reply = String::new();
        BufReader::new(w).read_line(&mut reply)?;
        Ok(reply.trim_end().to_string())
    };
    if let Some(addr) = conn.strip_prefix("tcp:") {
        send(Box::new(TcpStream::connect(addr)?))
    } else {
        send(Box::new(UnixStream::connect(
            conn.strip_prefix("unix:").unwrap_or(conn),
        )?))
    }
}

trait ReadWrite: std::io::Read + Write {}
impl ReadWrite for TcpStream {}
impl ReadWrite for UnixStream {}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let mut conn: Option<String> = None;
    let mut command: Option<String> = None;
    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut raw: Option<String> = None;
    let value = |it: &mut dyn Iterator<Item = &String>, flag: &str| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => conn = Some(format!("tcp:{}", value(&mut it, "--tcp"))),
            "--unix" => conn = Some(format!("unix:{}", value(&mut it, "--unix"))),
            "simulate" | "stats" | "metrics" if command.is_none() => command = Some(arg.clone()),
            "raw" if command.is_none() => {
                command = Some(arg.clone());
                raw = Some(value(&mut it, "raw"));
            }
            "--kernel" | "--config" | "--class" | "--schedule" => {
                let key = arg.trim_start_matches("--").to_string();
                fields.push((key, Value::String(value(&mut it, arg))));
            }
            "--trials" | "--jitter" | "--deadline-ms" => {
                let key = arg.trim_start_matches("--").replace('-', "_");
                let n: u64 = value(&mut it, arg).parse().unwrap_or_else(|_| {
                    eprintln!("{arg} needs a number");
                    usage()
                });
                fields.push((key, Value::UInt(n)));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let (Some(conn), Some(command)) = (conn, command) else {
        usage();
    };
    let line = match command.as_str() {
        "stats" => r#"{"op":"stats"}"#.to_string(),
        "metrics" => r#"{"op":"metrics"}"#.to_string(),
        "raw" => raw.expect("raw command captured its payload"),
        "simulate" => {
            let mut entries = vec![("op".to_string(), Value::String("simulate".into()))];
            entries.extend(fields);
            serde_json::to_string(&Value::Object(entries)).expect("request renders infallibly")
        }
        _ => usage(),
    };
    match roundtrip(&conn, &line) {
        Ok(reply) => {
            let parsed = serde_json::parse(&reply).ok();
            let ok = parsed
                .as_ref()
                .and_then(|v| v["ok"].as_bool())
                .unwrap_or(false);
            // `metrics` unwraps the exposition text (real newlines) for
            // scrapers; everything else prints the reply line verbatim.
            match parsed
                .filter(|_| ok && command == "metrics")
                .and_then(|v| v["prometheus"].as_str().map(str::to_string))
            {
                Some(text) => print!("{text}"),
                None => println!("{reply}"),
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("paxsim-cli: {conn}: {e}");
            std::process::exit(2);
        }
    }
}
