//! `paxsim-cli` — command-line client for the paxsim-serve daemon.
//!
//! ```text
//! paxsim-cli (--tcp ADDR | --unix PATH) simulate --kernel K --config C
//!            [--class T] [--trials N] [--jitter N] [--schedule S]
//!            [--deadline-ms N] [--fidelity exact|fast|predicted]
//!            [--concurrency N] [--repeat N]
//! paxsim-cli (--tcp ADDR | --unix PATH) tune --kernel K
//!            [--configs "C1;C2;…"] [--schedules "S1;S2;…"]
//!            [--budget N] [--algo halving|hillclimb] [--margin F]
//!            [--class T] [--trials N] [--jitter N] [--deadline-ms N]
//!            [--fidelity exact|predicted]
//! paxsim-cli (--tcp ADDR | --unix PATH) stats
//! paxsim-cli (--tcp ADDR | --unix PATH) metrics
//! paxsim-cli (--tcp ADDR | --unix PATH) health
//! paxsim-cli (--tcp ADDR | --unix PATH) raw '<json>' [--concurrency N]
//!            [--repeat N]
//! common flags: [--retries N] [--retry-base-ms N] [--pretty]
//! ```
//!
//! Prints the daemon's reply line verbatim on stdout — except `metrics`,
//! which unpacks the reply's Prometheus exposition text so the output can
//! be piped straight to a scrape file, and `--pretty`, which re-renders
//! the reply as indented JSON. Both the verbatim default and the pretty
//! printer are **tolerant of unknown reply fields**: newer daemons stamp
//! extra keys onto replies (`fidelity`, `error_bounds`, …) and the CLI
//! passes them through rather than rejecting them — an old client must
//! keep working against a new daemon. Exits 0 on an `"ok":true` reply,
//! 1 on an error or malformed reply, 2 on usage/transport problems.
//! Transport failures are typed, never panics: connection refused,
//! connection closed mid-reply (EOF before the newline), and a malformed
//! reply each get a distinct `paxsim-cli:` diagnostic on stderr.
//!
//! The client is **self-healing**: transient failures — connect errors,
//! mid-exchange resets/EOF, and `overloaded`/`shed` rejections — are
//! retried up to `--retries` times (default 3) with jittered exponential
//! backoff starting at `--retry-base-ms` (default 25). Resending is safe
//! by construction: a simulate request's identity is its canonical
//! content hash, so the daemon dedupes a retried request against the
//! cache and the single-flight table — the content hash *is* the
//! idempotency key, and a retry can never double-compute or diverge.
//!
//! With `--concurrency N` (persistent connections) and/or `--repeat N`
//! (total request count, round-robined over the connections) the CLI
//! turns into a minimal load driver: identical concurrent requests
//! exercise the daemon's single-flight path the first time and the cache
//! thereafter, and a *set* of CLIs with different kernels exercises the
//! batching path. The reply mode then prints one summary JSON line —
//! request count, ok/error split, wall time, requests/sec, and latency
//! percentiles — and exits 0 only if every reply was `"ok":true`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use serde::Value;

fn usage() -> ! {
    eprintln!(
        "usage: paxsim-cli (--tcp ADDR | --unix PATH) <command>\n\
         commands:\n\
         \x20 simulate --kernel K --config C [--class T] [--trials N]\n\
         \x20          [--jitter N] [--schedule S] [--deadline-ms N]\n\
         \x20          [--fidelity exact|fast|predicted]\n\
         \x20          [--concurrency N] [--repeat N]\n\
         \x20 tune --kernel K [--configs \"C1;C2;…\"] [--schedules \"S1;S2;…\"]\n\
         \x20      [--budget N] [--algo halving|hillclimb] [--margin F]\n\
         \x20      [--class T] [--trials N] [--jitter N] [--deadline-ms N]\n\
         \x20      [--fidelity exact|predicted]\n\
         \x20 stats\n\
         \x20 metrics\n\
         \x20 health\n\
         \x20 raw '<json>' [--concurrency N] [--repeat N]\n\
         common flags: [--retries N] [--retry-base-ms N] [--pretty]"
    );
    std::process::exit(2);
}

trait ReadWrite: std::io::Read + Write {}
impl ReadWrite for TcpStream {}
impl ReadWrite for UnixStream {}

/// A transport-layer failure, typed so each mode of dying gets its own
/// diagnostic (and so retry logic can tell them apart from usage errors).
enum Transport {
    /// `connect(2)` itself failed — daemon down, wrong address, refused.
    Connect(std::io::Error),
    /// The exchange started but an I/O call failed (reset, broken pipe).
    Io(std::io::Error),
    /// The peer closed the connection before a full reply line arrived.
    /// `got` is how many bytes of partial reply we saw.
    MidReplyEof { got: usize },
}

impl std::fmt::Display for Transport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Transport::Connect(e) => write!(f, "connect failed: {e}"),
            Transport::Io(e) => write!(f, "i/o error mid-exchange: {e}"),
            Transport::MidReplyEof { got } => write!(
                f,
                "connection closed mid-reply ({got} bytes before EOF, no newline)"
            ),
        }
    }
}

/// Jittered exponential backoff, seeded from wall clock + pid. A tiny
/// LCG is plenty: the jitter only needs to decorrelate concurrent
/// clients, not be statistically pristine.
struct Backoff {
    state: u64,
    base_ms: u64,
}

impl Backoff {
    fn new(base_ms: u64) -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.subsec_nanos() as u64)
            .unwrap_or(0);
        Backoff {
            state: nanos ^ (u64::from(std::process::id()) << 17) ^ 0x9e37_79b9_7f4a_7c15,
            base_ms: base_ms.max(1),
        }
    }

    /// Delay before retry number `attempt` (0-based): uniform in
    /// `[cap/2, cap]` where `cap = base * 2^attempt`, capped at ~64x base.
    fn delay(&mut self, attempt: u32) -> std::time::Duration {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let cap = self.base_ms << attempt.min(6);
        let half = (cap / 2).max(1);
        std::time::Duration::from_millis(half + (self.state >> 33) % (half + 1))
    }
}

fn connect(conn: &str) -> Result<Box<dyn ReadWrite>, Transport> {
    if let Some(addr) = conn.strip_prefix("tcp:") {
        Ok(Box::new(
            TcpStream::connect(addr).map_err(Transport::Connect)?,
        ))
    } else {
        Ok(Box::new(
            UnixStream::connect(conn.strip_prefix("unix:").unwrap_or(conn))
                .map_err(Transport::Connect)?,
        ))
    }
}

/// One request/reply exchange on an established connection. A clean
/// close before the reply's newline is `MidReplyEof`, not an empty
/// string — a half-reply must never be mistaken for an answer.
fn exchange(reader: &mut BufReader<Box<dyn ReadWrite>>, line: &str) -> Result<String, Transport> {
    reader
        .get_mut()
        .write_all(line.as_bytes())
        .and_then(|()| reader.get_mut().write_all(b"\n"))
        .and_then(|()| reader.get_mut().flush())
        .map_err(Transport::Io)?;
    let mut reply = String::new();
    let n = reader.read_line(&mut reply).map_err(Transport::Io)?;
    if n == 0 || !reply.ends_with('\n') {
        return Err(Transport::MidReplyEof { got: reply.len() });
    }
    Ok(reply.trim_end().to_string())
}

fn roundtrip(conn: &str, line: &str) -> Result<String, Transport> {
    let mut reader = BufReader::new(connect(conn)?);
    exchange(&mut reader, line)
}

/// Is this reply a rejection the daemon explicitly expects us to retry?
/// `overloaded` and `shed` are load transients; `quarantined` and real
/// errors are not (retrying inside the breaker cooldown cannot succeed).
fn retryable_reply(reply: &str) -> bool {
    reply.contains("\"error\":\"overloaded\"") || reply.contains("\"error\":\"shed\"")
}

/// Self-healing round trip: retry transport failures and retryable
/// rejections up to `retries` times with jittered exponential backoff.
/// Safe because requests are idempotent by content hash (see module doc).
fn roundtrip_with_retry(
    conn: &str,
    line: &str,
    retries: u32,
    base_ms: u64,
) -> Result<String, Transport> {
    let mut backoff = Backoff::new(base_ms);
    let mut attempt = 0u32;
    loop {
        match roundtrip(conn, line) {
            Ok(reply) if retryable_reply(&reply) && attempt < retries => {
                eprintln!(
                    "paxsim-cli: daemon shed the request (attempt {}), backing off…",
                    attempt + 1
                );
            }
            Ok(reply) => return Ok(reply),
            Err(e) if attempt < retries => {
                eprintln!("paxsim-cli: {e} (attempt {}), backing off…", attempt + 1);
            }
            Err(e) => return Err(e),
        }
        std::thread::sleep(backoff.delay(attempt));
        attempt += 1;
    }
}

/// One persistent load-driver connection: send/recv `line` `count` times,
/// returning per-request latencies (ms), the ok-reply count, and how many
/// retries healed a dropped connection. A transport failure mid-stream
/// reconnects and *resends the same request* (idempotent by content
/// hash), up to `retries` attempts per request.
/// Per-connection load result: latencies (ms), ok-reply count, heals.
type DriveResult = Result<(Vec<f64>, usize, usize), Transport>;

fn drive(conn: &str, line: &str, count: usize, retries: u32, base_ms: u64) -> DriveResult {
    let mut backoff = Backoff::new(base_ms);
    let mut reader = BufReader::new(connect(conn)?);
    let mut latencies = Vec::with_capacity(count);
    let mut ok = 0usize;
    let mut healed = 0usize;
    for _ in 0..count {
        let t0 = std::time::Instant::now();
        let mut attempt = 0u32;
        let reply = loop {
            match exchange(&mut reader, line) {
                Ok(reply) => break reply,
                Err(e) if attempt < retries => {
                    std::thread::sleep(backoff.delay(attempt));
                    attempt += 1;
                    healed += 1;
                    // The old connection is dead either way; replace it.
                    // A failed reconnect leaves the dead one in place, so
                    // the next exchange fails and burns another attempt.
                    if let Ok(fresh) = connect(conn) {
                        reader = BufReader::new(fresh);
                    }
                    let _ = e;
                }
                Err(e) => return Err(e),
            }
        };
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if reply.contains("\"ok\":true") {
            ok += 1;
        }
    }
    Ok((latencies, ok, healed))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Fan `line` out over `concurrency` persistent connections, `repeat`
/// total requests; print a one-line JSON summary. Exit 0 iff every reply
/// was ok.
fn run_load(
    conn: &str,
    line: &str,
    concurrency: usize,
    repeat: usize,
    retries: u32,
    base_ms: u64,
) -> ! {
    let concurrency = concurrency.max(1);
    let repeat = repeat.max(1).max(concurrency);
    let per = repeat / concurrency;
    let extra = repeat % concurrency;
    let t0 = std::time::Instant::now();
    let results: Vec<DriveResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|i| {
                let count = per + usize::from(i < extra);
                scope.spawn(move || drive(conn, line, count, retries, base_ms))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut ok = 0usize;
    let mut io_errors = 0usize;
    let mut retried = 0usize;
    for r in results {
        match r {
            Ok((lat, n_ok, healed)) => {
                ok += n_ok;
                retried += healed;
                latencies.extend(lat);
            }
            Err(e) => {
                eprintln!("paxsim-cli: connection gave up after retries: {e}");
                io_errors += 1;
            }
        }
    }
    // total_cmp, not partial_cmp().expect(): a NaN latency (clock skew,
    // overflow in the ms conversion) must not panic the summary.
    latencies.sort_by(f64::total_cmp);
    let requests = latencies.len();
    let summary = Value::Object(vec![
        (
            "ok".to_string(),
            Value::Bool(ok == requests && io_errors == 0),
        ),
        ("requests".to_string(), Value::UInt(requests as u64)),
        ("ok_replies".to_string(), Value::UInt(ok as u64)),
        (
            "error_replies".to_string(),
            Value::UInt((requests - ok) as u64),
        ),
        ("io_errors".to_string(), Value::UInt(io_errors as u64)),
        ("retries".to_string(), Value::UInt(retried as u64)),
        ("concurrency".to_string(), Value::UInt(concurrency as u64)),
        ("wall_s".to_string(), Value::Float(wall)),
        (
            "rps".to_string(),
            Value::Float(if wall > 0.0 {
                requests as f64 / wall
            } else {
                0.0
            }),
        ),
        (
            "p50_ms".to_string(),
            Value::Float(percentile(&latencies, 0.5)),
        ),
        (
            "p99_ms".to_string(),
            Value::Float(percentile(&latencies, 0.99)),
        ),
    ]);
    println!(
        "{}",
        serde_json::to_string(&summary).expect("summary renders infallibly")
    );
    std::process::exit(if ok == requests && io_errors == 0 {
        0
    } else {
        1
    });
}

/// Re-render one reply line as indented JSON, preserving key order and
/// passing every field through — known or not. Tolerance is the point:
/// a daemon newer than this client stamps extra keys onto replies
/// (`fidelity`, `error_bounds`, next year's additions) and the pretty
/// printer must show them, never reject them. Non-JSON input comes back
/// verbatim — a transport diagnostic must not be eaten by its own
/// formatter.
fn pretty_reply(reply: &str) -> String {
    match serde_json::parse(reply) {
        Ok(v) => {
            let mut out = String::new();
            pretty_value(&v, 0, &mut out);
            out
        }
        Err(_) => reply.to_string(),
    }
}

fn pretty_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent + 1);
    match v {
        Value::Object(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in entries.iter().enumerate() {
                out.push_str(&pad);
                out.push_str(
                    &serde_json::to_string(&Value::String(k.clone()))
                        .expect("string key renders infallibly"),
                );
                out.push_str(": ");
                pretty_value(val, indent + 1, out);
                if i + 1 < entries.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push('}');
        }
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad);
                pretty_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&"  ".repeat(indent));
            out.push(']');
        }
        scalar => {
            out.push_str(&serde_json::to_string(scalar).expect("scalar value renders infallibly"))
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let mut conn: Option<String> = None;
    let mut command: Option<String> = None;
    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut raw: Option<String> = None;
    let mut concurrency: usize = 1;
    let mut repeat: usize = 1;
    let mut retries: u32 = 3;
    let mut retry_base_ms: u64 = 25;
    let mut pretty = false;
    let value = |it: &mut dyn Iterator<Item = &String>, flag: &str| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => conn = Some(format!("tcp:{}", value(&mut it, "--tcp"))),
            "--unix" => conn = Some(format!("unix:{}", value(&mut it, "--unix"))),
            "simulate" | "tune" | "stats" | "metrics" | "health" if command.is_none() => {
                command = Some(arg.clone())
            }
            "raw" if command.is_none() => {
                command = Some(arg.clone());
                raw = Some(value(&mut it, "raw"));
            }
            "--kernel" | "--config" | "--class" | "--schedule" | "--fidelity" | "--algo" => {
                let key = arg.trim_start_matches("--").to_string();
                fields.push((key, Value::String(value(&mut it, arg))));
            }
            // Schedule clauses contain commas ("dynamic,2"), so list
            // flags split on ';' instead.
            "--configs" | "--schedules" => {
                let key = arg.trim_start_matches("--").to_string();
                let items: Vec<Value> = value(&mut it, arg)
                    .split(';')
                    .map(|s| Value::String(s.trim().to_string()))
                    .filter(|v| v.as_str().is_some_and(|s| !s.is_empty()))
                    .collect();
                fields.push((key, Value::Array(items)));
            }
            "--margin" => {
                let f: f64 = value(&mut it, arg).parse().unwrap_or_else(|_| {
                    eprintln!("{arg} needs a number");
                    usage()
                });
                fields.push(("margin".to_string(), Value::Float(f)));
            }
            "--pretty" => pretty = true,
            "--concurrency" | "--repeat" | "--retries" | "--retry-base-ms" => {
                let n: u64 = value(&mut it, arg).parse().unwrap_or_else(|_| {
                    eprintln!("{arg} needs a number");
                    usage()
                });
                match arg.as_str() {
                    "--concurrency" => concurrency = n as usize,
                    "--repeat" => repeat = n as usize,
                    "--retries" => retries = n as u32,
                    _ => retry_base_ms = n.max(1),
                }
            }
            "--trials" | "--jitter" | "--deadline-ms" | "--budget" => {
                let key = arg.trim_start_matches("--").replace('-', "_");
                let n: u64 = value(&mut it, arg).parse().unwrap_or_else(|_| {
                    eprintln!("{arg} needs a number");
                    usage()
                });
                fields.push((key, Value::UInt(n)));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let (Some(conn), Some(command)) = (conn, command) else {
        usage();
    };
    let line = match command.as_str() {
        "stats" => r#"{"op":"stats"}"#.to_string(),
        "metrics" => r#"{"op":"metrics"}"#.to_string(),
        "health" => r#"{"op":"health"}"#.to_string(),
        "raw" => raw.expect("raw command captured its payload"),
        "simulate" | "tune" => {
            let mut entries = vec![("op".to_string(), Value::String(command.clone()))];
            entries.extend(fields);
            serde_json::to_string(&Value::Object(entries)).expect("request renders infallibly")
        }
        _ => usage(),
    };
    if concurrency > 1 || repeat > 1 {
        if command == "stats" || command == "metrics" || command == "health" {
            eprintln!("--concurrency/--repeat apply to simulate, tune and raw only");
            usage();
        }
        run_load(&conn, &line, concurrency, repeat, retries, retry_base_ms);
    }
    match roundtrip_with_retry(&conn, &line, retries, retry_base_ms) {
        Ok(reply) => {
            let parsed = serde_json::parse(&reply).ok();
            if parsed.is_none() {
                eprintln!("paxsim-cli: malformed reply (not JSON): {reply}");
                std::process::exit(1);
            }
            let ok = parsed
                .as_ref()
                .and_then(|v| v["ok"].as_bool())
                .unwrap_or(false);
            // `metrics` unwraps the exposition text (real newlines) for
            // scrapers; everything else prints the reply line verbatim.
            match parsed
                .filter(|_| ok && command == "metrics")
                .and_then(|v| v["prometheus"].as_str().map(str::to_string))
            {
                Some(text) => print!("{text}"),
                None if pretty => println!("{}", pretty_reply(&reply)),
                None => println!("{reply}"),
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("paxsim-cli: {conn}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_reply_tolerates_overstuffed_replies() {
        // A reply from a daemon far newer than this client: the four
        // standard result fields plus a pile the client has never heard
        // of — trailing scalars, a nested object, an array, null. The
        // printer must render every one (no field left behind, no
        // error), and the output must parse back to the same value.
        let overstuffed = concat!(
            r#"{"ok":true,"hash":"00000000deadbeef","spec":{"kernel":"ep"},"#,
            r#""result":{"sides":[]},"fidelity":"predicted","#,
            r#""error_bounds":{"wall":0.25,"cpi":0.4},"#,
            r#""x_future_field":[1,2.5,"three"],"x_null":null,"x_flag":false}"#
        );
        let pretty = pretty_reply(overstuffed);
        for needle in [
            "\"fidelity\": \"predicted\"",
            "\"error_bounds\"",
            "\"x_future_field\"",
            "\"x_null\": null",
            "\"x_flag\": false",
        ] {
            assert!(pretty.contains(needle), "{needle} missing from:\n{pretty}");
        }
        assert!(pretty.lines().count() > 1, "pretty output is multi-line");
        let reparsed = serde_json::parse(&pretty).expect("pretty output stays valid JSON");
        let original = serde_json::parse(overstuffed).unwrap();
        assert_eq!(
            serde_json::to_string(&reparsed).unwrap(),
            serde_json::to_string(&original).unwrap(),
            "pretty-printing must preserve every field and their order"
        );
        // Non-JSON diagnostics pass through untouched.
        assert_eq!(pretty_reply("not json"), "not json");
    }
}
