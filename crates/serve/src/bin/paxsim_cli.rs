//! `paxsim-cli` — command-line client for the paxsim-serve daemon.
//!
//! ```text
//! paxsim-cli (--tcp ADDR | --unix PATH) simulate --kernel K --config C
//!            [--class T] [--trials N] [--jitter N] [--schedule S]
//!            [--deadline-ms N] [--concurrency N] [--repeat N]
//! paxsim-cli (--tcp ADDR | --unix PATH) stats
//! paxsim-cli (--tcp ADDR | --unix PATH) metrics
//! paxsim-cli (--tcp ADDR | --unix PATH) raw '<json>' [--concurrency N]
//!            [--repeat N]
//! ```
//!
//! Prints the daemon's reply line verbatim on stdout — except `metrics`,
//! which unpacks the reply's Prometheus exposition text so the output can
//! be piped straight to a scrape file. Exits 0 on an `"ok":true` reply,
//! 1 on an error reply, 2 on usage/connection problems.
//!
//! With `--concurrency N` (persistent connections) and/or `--repeat N`
//! (total request count, round-robined over the connections) the CLI
//! turns into a minimal load driver: identical concurrent requests
//! exercise the daemon's single-flight path the first time and the cache
//! thereafter, and a *set* of CLIs with different kernels exercises the
//! batching path. The reply mode then prints one summary JSON line —
//! request count, ok/error split, wall time, requests/sec, and latency
//! percentiles — and exits 0 only if every reply was `"ok":true`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;

use serde::Value;

fn usage() -> ! {
    eprintln!(
        "usage: paxsim-cli (--tcp ADDR | --unix PATH) <command>\n\
         commands:\n\
         \x20 simulate --kernel K --config C [--class T] [--trials N]\n\
         \x20          [--jitter N] [--schedule S] [--deadline-ms N]\n\
         \x20          [--concurrency N] [--repeat N]\n\
         \x20 stats\n\
         \x20 metrics\n\
         \x20 raw '<json>' [--concurrency N] [--repeat N]"
    );
    std::process::exit(2);
}

fn roundtrip(conn: &str, line: &str) -> std::io::Result<String> {
    let send = |mut w: Box<dyn ReadWrite>| -> std::io::Result<String> {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        w.flush()?;
        let mut reply = String::new();
        BufReader::new(w).read_line(&mut reply)?;
        Ok(reply.trim_end().to_string())
    };
    if let Some(addr) = conn.strip_prefix("tcp:") {
        send(Box::new(TcpStream::connect(addr)?))
    } else {
        send(Box::new(UnixStream::connect(
            conn.strip_prefix("unix:").unwrap_or(conn),
        )?))
    }
}

trait ReadWrite: std::io::Read + Write {}
impl ReadWrite for TcpStream {}
impl ReadWrite for UnixStream {}

/// One persistent load-driver connection: send/recv `line` `count` times,
/// returning per-request latencies (ms) and the ok-reply count.
fn drive(conn: &str, line: &str, count: usize) -> std::io::Result<(Vec<f64>, usize)> {
    let stream: Box<dyn ReadWrite> = if let Some(addr) = conn.strip_prefix("tcp:") {
        Box::new(TcpStream::connect(addr)?)
    } else {
        Box::new(UnixStream::connect(
            conn.strip_prefix("unix:").unwrap_or(conn),
        )?)
    };
    let mut reader = BufReader::new(stream);
    let mut latencies = Vec::with_capacity(count);
    let mut ok = 0usize;
    let mut reply = String::new();
    for _ in 0..count {
        let t0 = std::time::Instant::now();
        reader.get_mut().write_all(line.as_bytes())?;
        reader.get_mut().write_all(b"\n")?;
        reader.get_mut().flush()?;
        reply.clear();
        reader.read_line(&mut reply)?;
        latencies.push(t0.elapsed().as_secs_f64() * 1e3);
        if reply.contains("\"ok\":true") {
            ok += 1;
        }
    }
    Ok((latencies, ok))
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Fan `line` out over `concurrency` persistent connections, `repeat`
/// total requests; print a one-line JSON summary. Exit 0 iff every reply
/// was ok.
fn run_load(conn: &str, line: &str, concurrency: usize, repeat: usize) -> ! {
    let concurrency = concurrency.max(1);
    let repeat = repeat.max(1).max(concurrency);
    let per = repeat / concurrency;
    let extra = repeat % concurrency;
    let t0 = std::time::Instant::now();
    let results: Vec<std::io::Result<(Vec<f64>, usize)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..concurrency)
            .map(|i| {
                let count = per + usize::from(i < extra);
                scope.spawn(move || drive(conn, line, count))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();
    let mut latencies = Vec::new();
    let mut ok = 0usize;
    let mut io_errors = 0usize;
    for r in results {
        match r {
            Ok((lat, n_ok)) => {
                ok += n_ok;
                latencies.extend(lat);
            }
            Err(_) => io_errors += 1,
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let requests = latencies.len();
    let summary = Value::Object(vec![
        (
            "ok".to_string(),
            Value::Bool(ok == requests && io_errors == 0),
        ),
        ("requests".to_string(), Value::UInt(requests as u64)),
        ("ok_replies".to_string(), Value::UInt(ok as u64)),
        (
            "error_replies".to_string(),
            Value::UInt((requests - ok) as u64),
        ),
        ("io_errors".to_string(), Value::UInt(io_errors as u64)),
        ("concurrency".to_string(), Value::UInt(concurrency as u64)),
        ("wall_s".to_string(), Value::Float(wall)),
        (
            "rps".to_string(),
            Value::Float(if wall > 0.0 {
                requests as f64 / wall
            } else {
                0.0
            }),
        ),
        (
            "p50_ms".to_string(),
            Value::Float(percentile(&latencies, 0.5)),
        ),
        (
            "p99_ms".to_string(),
            Value::Float(percentile(&latencies, 0.99)),
        ),
    ]);
    println!(
        "{}",
        serde_json::to_string(&summary).expect("summary renders infallibly")
    );
    std::process::exit(if ok == requests && io_errors == 0 {
        0
    } else {
        1
    });
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let mut conn: Option<String> = None;
    let mut command: Option<String> = None;
    let mut fields: Vec<(String, Value)> = Vec::new();
    let mut raw: Option<String> = None;
    let mut concurrency: usize = 1;
    let mut repeat: usize = 1;
    let value = |it: &mut dyn Iterator<Item = &String>, flag: &str| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => conn = Some(format!("tcp:{}", value(&mut it, "--tcp"))),
            "--unix" => conn = Some(format!("unix:{}", value(&mut it, "--unix"))),
            "simulate" | "stats" | "metrics" if command.is_none() => command = Some(arg.clone()),
            "raw" if command.is_none() => {
                command = Some(arg.clone());
                raw = Some(value(&mut it, "raw"));
            }
            "--kernel" | "--config" | "--class" | "--schedule" => {
                let key = arg.trim_start_matches("--").to_string();
                fields.push((key, Value::String(value(&mut it, arg))));
            }
            "--concurrency" | "--repeat" => {
                let n: usize = value(&mut it, arg).parse().unwrap_or_else(|_| {
                    eprintln!("{arg} needs a number");
                    usage()
                });
                if arg == "--concurrency" {
                    concurrency = n;
                } else {
                    repeat = n;
                }
            }
            "--trials" | "--jitter" | "--deadline-ms" => {
                let key = arg.trim_start_matches("--").replace('-', "_");
                let n: u64 = value(&mut it, arg).parse().unwrap_or_else(|_| {
                    eprintln!("{arg} needs a number");
                    usage()
                });
                fields.push((key, Value::UInt(n)));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let (Some(conn), Some(command)) = (conn, command) else {
        usage();
    };
    let line = match command.as_str() {
        "stats" => r#"{"op":"stats"}"#.to_string(),
        "metrics" => r#"{"op":"metrics"}"#.to_string(),
        "raw" => raw.expect("raw command captured its payload"),
        "simulate" => {
            let mut entries = vec![("op".to_string(), Value::String("simulate".into()))];
            entries.extend(fields);
            serde_json::to_string(&Value::Object(entries)).expect("request renders infallibly")
        }
        _ => usage(),
    };
    if concurrency > 1 || repeat > 1 {
        if command != "simulate" && command != "raw" {
            eprintln!("--concurrency/--repeat apply to simulate and raw only");
            usage();
        }
        run_load(&conn, &line, concurrency, repeat);
    }
    match roundtrip(&conn, &line) {
        Ok(reply) => {
            let parsed = serde_json::parse(&reply).ok();
            let ok = parsed
                .as_ref()
                .and_then(|v| v["ok"].as_bool())
                .unwrap_or(false);
            // `metrics` unwraps the exposition text (real newlines) for
            // scrapers; everything else prints the reply line verbatim.
            match parsed
                .filter(|_| ok && command == "metrics")
                .and_then(|v| v["prometheus"].as_str().map(str::to_string))
            {
                Some(text) => print!("{text}"),
                None => println!("{reply}"),
            }
            std::process::exit(if ok { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("paxsim-cli: {conn}: {e}");
            std::process::exit(2);
        }
    }
}
