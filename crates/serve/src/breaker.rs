//! Per-config circuit breaker: quarantine requests that keep crashing.
//!
//! The pool's isolation layer already absorbs *transient* cell panics
//! (catch_unwind + retry with backoff). What it cannot absorb is a
//! config that panics **deterministically** — every request for it burns
//! `1 + max_retries` panics worth of worker time, and a client retry
//! loop turns one poisoned config into a standing drain on the daemon.
//!
//! The breaker tracks consecutive *post-retry* failures per
//! [`ConfigHash`](paxsim_core::hash::ConfigHash) key and runs the classic
//! three-state machine:
//!
//! ```text
//!            failure (count < threshold)
//!           ┌────┐
//!           ▼    │
//!  ┌─────────────┴─┐  count == threshold   ┌──────────────────┐
//!  │    Closed     │ ────────────────────► │  Open(until)     │
//!  └───────▲───────┘                       └────────┬─────────┘
//!          │ success                                │ cooldown elapsed
//!          │                                        ▼
//!          │                               ┌──────────────────┐
//!          └────────────────────────────── │    HalfOpen      │
//!               probe succeeds             └────────┬─────────┘
//!                                                   │ probe fails
//!                                                   ▼ (re-Open, no
//!                                                     threshold wait)
//! ```
//!
//! While `Open`, requests for the key are rejected with a typed
//! `quarantined` error carrying the remaining cooldown — the daemon
//! spends zero compute on them. After the cooldown one probe request is
//! let through (`HalfOpen`); the single-flight table upstream already
//! collapses concurrent identical requests, so "one probe" needs no
//! extra machinery here. A successful probe closes the breaker; a failed
//! one reopens it immediately.
//!
//! A `threshold` of `0` disables the breaker entirely (every method is a
//! no-op), which is also the reference behavior for differential tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Closed,
    Open { until: Instant },
    HalfOpen,
}

struct Entry {
    failures: u32,
    state: State,
}

/// One quarantine-worthy key's public state, for `op=health`.
#[derive(Debug, Clone)]
pub struct QuarantineInfo {
    /// The config's content hash (the cache key).
    pub hash: u64,
    /// Consecutive post-retry failures recorded.
    pub failures: u32,
    /// `"open"` or `"half-open"` (closed entries are not reported).
    pub state: &'static str,
    /// Milliseconds until a probe is allowed (0 once probing).
    pub retry_in_ms: u64,
}

/// The breaker table. One per [`Service`](crate::service::Service).
pub struct Breaker {
    threshold: u32,
    cooldown: Duration,
    entries: Mutex<HashMap<u64, Entry>>,
    trips: AtomicU64,
    rejected: AtomicU64,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Breaker {
    /// A breaker tripping after `threshold` consecutive failures, holding
    /// keys quarantined for `cooldown`. `threshold == 0` disables it.
    pub fn new(threshold: u32, cooldown: Duration) -> Breaker {
        Breaker {
            threshold,
            cooldown,
            entries: Mutex::new(HashMap::new()),
            trips: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Gate a request for `key`. `Ok(())` admits it (including the
    /// half-open probe); `Err(retry_in_ms)` is a typed quarantine
    /// rejection with the remaining cooldown.
    pub fn check(&self, key: u64) -> Result<(), u64> {
        if self.threshold == 0 {
            return Ok(());
        }
        let mut entries = lock(&self.entries);
        let Some(e) = entries.get_mut(&key) else {
            return Ok(());
        };
        match e.state {
            State::Closed | State::HalfOpen => Ok(()),
            State::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    e.state = State::HalfOpen;
                    Ok(())
                } else {
                    self.rejected.fetch_add(1, Ordering::Relaxed);
                    Err(((until - now).as_millis() as u64).max(1))
                }
            }
        }
    }

    /// Record a completed computation for `key`: closes the breaker and
    /// forgets the key.
    pub fn success(&self, key: u64) {
        if self.threshold == 0 {
            return;
        }
        lock(&self.entries).remove(&key);
    }

    /// Record a post-retry failure for `key`. Trips to `Open` at the
    /// threshold; a failed half-open probe re-opens immediately.
    pub fn failure(&self, key: u64) {
        if self.threshold == 0 {
            return;
        }
        let mut entries = lock(&self.entries);
        let e = entries.entry(key).or_insert(Entry {
            failures: 0,
            state: State::Closed,
        });
        e.failures = e.failures.saturating_add(1);
        let failed_probe = e.state == State::HalfOpen;
        if failed_probe || e.failures >= self.threshold {
            e.state = State::Open {
                until: Instant::now() + self.cooldown,
            };
            self.trips.fetch_add(1, Ordering::Relaxed);
            static TRIPS: paxsim_obs::LazyCounter =
                paxsim_obs::LazyCounter::new("serve.breaker.trips");
            TRIPS.inc();
        }
    }

    /// Times any key transitioned into `Open`.
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }

    /// Requests rejected with `quarantined`.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    pub fn cooldown_ms(&self) -> u64 {
        self.cooldown.as_millis() as u64
    }

    /// Every non-closed key, for the health endpoint. Sorted by hash so
    /// the reply is deterministic.
    pub fn snapshot(&self) -> Vec<QuarantineInfo> {
        let now = Instant::now();
        let entries = lock(&self.entries);
        let mut out: Vec<QuarantineInfo> = entries
            .iter()
            .filter_map(|(&hash, e)| {
                let (state, retry_in_ms) = match e.state {
                    State::Closed => return None,
                    State::HalfOpen => ("half-open", 0),
                    State::Open { until } => (
                        "open",
                        until.saturating_duration_since(now).as_millis() as u64,
                    ),
                };
                Some(QuarantineInfo {
                    hash,
                    failures: e.failures,
                    state,
                    retry_in_ms,
                })
            })
            .collect();
        out.sort_by_key(|q| q.hash);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_only_at_threshold_and_success_resets() {
        let b = Breaker::new(3, Duration::from_millis(200));
        b.failure(7);
        b.failure(7);
        assert!(b.check(7).is_ok(), "two failures stay closed");
        b.success(7);
        b.failure(7);
        b.failure(7);
        assert!(b.check(7).is_ok(), "success must reset the streak");
        b.failure(7);
        let retry = b.check(7).unwrap_err();
        assert!(retry > 0 && retry <= 200, "open with cooldown: {retry}");
        assert_eq!(b.trips(), 1);
        assert_eq!(b.rejected(), 1);
        assert!(b.check(8).is_ok(), "other keys unaffected");
    }

    #[test]
    fn half_open_probe_then_close_or_reopen() {
        let b = Breaker::new(1, Duration::from_millis(20));
        b.failure(5);
        assert!(b.check(5).is_err(), "tripped at threshold 1");
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.check(5).is_ok(), "cooldown elapsed: probe admitted");
        // A failed probe reopens immediately, without a fresh streak.
        b.failure(5);
        assert!(b.check(5).is_err(), "failed probe must re-open");
        assert_eq!(b.trips(), 2);
        std::thread::sleep(Duration::from_millis(30));
        assert!(b.check(5).is_ok());
        b.success(5);
        assert!(b.check(5).is_ok(), "successful probe closes");
        assert!(b.snapshot().is_empty(), "closed keys are not reported");
    }

    #[test]
    fn snapshot_reports_open_keys() {
        let b = Breaker::new(1, Duration::from_secs(60));
        b.failure(9);
        b.failure(2);
        let snap = b.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].hash, 2, "sorted by hash");
        assert_eq!(snap[1].hash, 9);
        assert_eq!(snap[0].state, "open");
        assert!(snap[0].retry_in_ms > 0);
    }

    #[test]
    fn zero_threshold_disables() {
        let b = Breaker::new(0, Duration::from_secs(60));
        for _ in 0..10 {
            b.failure(1);
        }
        assert!(b.check(1).is_ok());
        assert_eq!(b.trips(), 0);
        assert!(b.snapshot().is_empty());
    }
}
