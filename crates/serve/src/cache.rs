//! The sharded, two-tier, content-addressed result cache.
//!
//! The PR-4 cache was one LRU behind one mutex over one journal file —
//! correct, but every hit on every connection serialized on that lock.
//! The cache is now **N independent shards**: each shard owns its own
//! in-memory LRU (its own mutex) and its own on-disk
//! [`Journal`](paxsim_core::journal::Journal) (`shard-<i>.jsonl`), so
//! lookups for different keys proceed in parallel and a put never blocks
//! an unrelated get. Within a shard the PR-4 semantics are unchanged:
//! tier 1 is an LRU keyed by the request's
//! [`ConfigHash`](paxsim_core::hash::ConfigHash); tier 2 is the same
//! CRC-per-record JSONL format the resilient sweep drivers checkpoint
//! into, so results survive daemon restarts and every corruption mode the
//! journal detects (bit rot, truncated tails) causes a recompute, never a
//! wrong answer. Disk hits are promoted into the shard's LRU; every put
//! lands in both tiers; duplicate keys are legal and last-record-wins.
//!
//! **Shard selection** is consistent hashing over the `ConfigHash`: each
//! shard contributes [`VNODES`] points to a ring of FNV-1a digests of
//! `"shard-<i>/vnode-<v>"`, and a key belongs to the first point at or
//! clockwise-after its hash ([`Ring::select`]). The canonical-JSON key is
//! already location-independent, so re-sharding (changing N) only *moves*
//! entries — a moved entry misses once and recomputes; it is never served
//! wrong — and consistent hashing keeps those moves to ~1/N of the
//! keyspace. The same function is exported ([`shard_index`]) so tests,
//! the load generator, and (eventually) a multi-node router agree with
//! the daemon about key placement.
//!
//! **Conservation** holds shard-locally and therefore globally: every
//! `get` books exactly one tier counter (mem hit, disk hit, or miss) in
//! exactly one shard, so `Σ hits + Σ misses == get calls` across any mix
//! of shards.
//!
//! A legacy single-file `results.jsonl` from a pre-shard daemon is
//! migrated at open: every valid record is appended into its owning
//! shard's journal and the legacy file is renamed to
//! `results.jsonl.migrated`, so an upgrade never recomputes a result it
//! already paid for.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use paxsim_core::error::{StudyError, StudyResult};
use paxsim_core::hash::{fnv1a, ConfigHash};
use paxsim_core::journal::{FsyncPolicy, Journal, Record, SideRecord};

/// Legacy (pre-shard) on-disk journal file name inside the cache
/// directory; present only in caches written by older daemons, migrated
/// on open.
pub const JOURNAL_FILE: &str = "results.jsonl";

/// Default shard count. Eight shards cut lock contention by ~8x while
/// keeping the cache directory readable; tune with `--shards`.
pub const DEFAULT_SHARDS: usize = 8;

/// Virtual nodes per shard on the consistent-hash ring. 16 points per
/// shard keeps the keyspace split within a few percent of even.
pub const VNODES: usize = 16;

/// On-disk journal file name for one shard.
pub fn shard_file_name(index: usize) -> String {
    format!("shard-{index}.jsonl")
}

// ---------------------------------------------------------------------------
// Consistent-hash ring.
// ---------------------------------------------------------------------------

/// A consistent-hash ring mapping `ConfigHash` points to shard indices.
pub struct Ring {
    /// `(point, shard)` sorted by point.
    points: Vec<(u64, usize)>,
}

impl Ring {
    /// Build the ring for `shards` shards ([`VNODES`] points each).
    pub fn new(shards: usize) -> Ring {
        let shards = shards.max(1);
        let mut points: Vec<(u64, usize)> = (0..shards)
            .flat_map(|s| {
                (0..VNODES).map(move |v| (fnv1a(format!("shard-{s}/vnode-{v}").as_bytes()), s))
            })
            .collect();
        points.sort_unstable();
        Ring { points }
    }

    /// The shard owning `hash`: the first ring point at or clockwise-after
    /// it, wrapping to the first point past the top of the keyspace.
    pub fn select(&self, hash: ConfigHash) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < hash.0);
        self.points[i % self.points.len()].1
    }
}

/// The shard a key lands in under an `n_shards`-way cache. Exported so
/// tests and external routers can locate a key's journal file without a
/// live cache instance.
pub fn shard_index(hash: ConfigHash, n_shards: usize) -> usize {
    Ring::new(n_shards).select(hash)
}

// ---------------------------------------------------------------------------
// One shard: LRU over journal, exactly the PR-4 two-tier semantics.
// ---------------------------------------------------------------------------

struct Lru {
    cap: usize,
    map: HashMap<u64, Record>,
    /// Keys from coldest (front) to hottest (back).
    order: VecDeque<u64>,
}

impl Lru {
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    fn get(&mut self, key: u64) -> Option<Record> {
        let rec = self.map.get(&key).cloned()?;
        self.touch(key);
        Some(rec)
    }

    /// Non-mutating lookup: no recency touch, no promotion.
    fn peek(&self, key: u64) -> Option<Record> {
        self.map.get(&key).cloned()
    }

    fn put(&mut self, key: u64, rec: Record) {
        if self.cap == 0 {
            return;
        }
        self.map.insert(key, rec);
        self.touch(key);
        while self.map.len() > self.cap {
            let coldest = self.order.pop_front().expect("order tracks map");
            self.map.remove(&coldest);
        }
    }
}

/// One independent cache shard: private LRU, private journal, private
/// counters. No state is shared between shards, which is the whole point.
struct Shard {
    journal: Journal,
    mem: Mutex<Lru>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
    /// Puts whose journal append failed and that degraded to the memory
    /// tier only (served correct but not durable; a restart recomputes).
    put_failures: AtomicU64,
}

fn lock(m: &Mutex<Lru>) -> MutexGuard<'_, Lru> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Shard {
    fn get(&self, hash: ConfigHash) -> Option<Record> {
        static MISS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.cache.misses");
        if let Some(rec) = self.probe(hash) {
            return Some(rec);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        MISS.inc();
        None
    }

    /// `get` minus the miss booking: a hit books its tier counter (and
    /// promotes, like `get`), a miss books *nothing* — the caller is
    /// expected to fall through to the slow path, whose own `get` books
    /// the miss. This is what lets the reactor's inline-hit fast path
    /// attempt a lookup without double-counting the misses it passes on.
    fn probe(&self, hash: ConfigHash) -> Option<Record> {
        static MEM: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.cache.mem_hits");
        static DISK: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.cache.disk_hits");
        // Chaos hook: a `serve-shard-slow:<ms>` plan stalls the lookup
        // here — after shard selection, before either tier — modelling a
        // shard pinned on slow storage. Latency only; the reply that
        // eventually flows is byte-identical.
        if let Some(ms) = paxsim_core::faultinject::serve_shard_slow() {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        if let Some(rec) = lock(&self.mem).get(hash.0) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            MEM.inc();
            return Some(rec);
        }
        if let Some(rec) = self.journal.lookup(&ResultCache::key(hash)) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            DISK.inc();
            lock(&self.mem).put(hash.0, rec.clone());
            return Some(rec);
        }
        None
    }

    fn peek(&self, hash: ConfigHash) -> Option<Record> {
        if let Some(rec) = lock(&self.mem).peek(hash.0) {
            return Some(rec);
        }
        self.journal.lookup(&ResultCache::key(hash))
    }

    fn put(&self, hash: ConfigHash, sides: Vec<SideRecord>) -> StudyResult<Record> {
        let key = ResultCache::key(hash);
        let rec = match self.journal.record(&key, sides.clone()) {
            Ok(()) => self
                .journal
                .lookup(&key)
                .expect("a just-recorded key is present"),
            // Degraded mode: an append failure (disk full, injected
            // `journal-fail`) must not turn a *computed* result into a
            // client error. The record serves from the memory tier —
            // byte-identical to the durable path, because the journal's
            // JSON round-trip is bit-exact — and a restart recomputes it.
            // `put_failures` (and the journal's own `write_errors`)
            // surface the degradation in `op=health`.
            Err(StudyError::JournalIo { .. }) => {
                self.put_failures.fetch_add(1, Ordering::Relaxed);
                static DEGRADED: paxsim_obs::LazyCounter =
                    paxsim_obs::LazyCounter::new("serve.cache.put_failures");
                DEGRADED.inc();
                Record { key, sides }
            }
            Err(e) => return Err(e),
        };
        self.puts.fetch_add(1, Ordering::Relaxed);
        static PUTS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.cache.puts");
        PUTS.inc();
        lock(&self.mem).put(hash.0, rec.clone());
        Ok(rec)
    }
}

// ---------------------------------------------------------------------------
// The sharded cache facade.
// ---------------------------------------------------------------------------

/// Point-in-time per-shard statistics, for `op=stats` / `op=metrics` /
/// `op=health`.
#[derive(Debug, Clone)]
pub struct ShardStats {
    pub mem_hits: u64,
    pub disk_hits: u64,
    pub misses: u64,
    pub puts: u64,
    pub entries_mem: usize,
    pub entries_disk: usize,
    pub corrupt_dropped: usize,
    /// Journal appends that failed at the I/O layer.
    pub write_errors: usize,
    /// Puts that degraded to the memory tier after a failed append.
    pub put_failures: u64,
    /// Stale journal lines (overwrites + corrupt) a compaction would
    /// reclaim.
    pub stale_lines: usize,
}

/// The sharded two-tier cache. Thread-safe; shared across every
/// connection; shard selection is consistent hashing on the key.
pub struct ResultCache {
    ring: Ring,
    shards: Vec<Shard>,
    /// Legacy records migrated into shards at open.
    migrated: usize,
}

impl ResultCache {
    /// Open the cache rooted at `dir` (created if absent) with `shards`
    /// shards, each holding at most `mem_cap / shards` records in memory
    /// (minimum one). A legacy single-file journal is migrated into the
    /// shard files before the shards load.
    ///
    /// # Errors
    ///
    /// Journal I/O errors opening, reading, or migrating the disk tier.
    pub fn open(dir: &Path, mem_cap: usize, shards: usize) -> StudyResult<ResultCache> {
        Self::open_with(dir, mem_cap, shards, FsyncPolicy::Flush)
    }

    /// [`ResultCache::open`] with an explicit per-append durability
    /// policy for the shard journals (`--fsync` on the daemon).
    ///
    /// # Errors
    ///
    /// Journal I/O errors opening, reading, or migrating the disk tier.
    pub fn open_with(
        dir: &Path,
        mem_cap: usize,
        shards: usize,
        fsync: FsyncPolicy,
    ) -> StudyResult<ResultCache> {
        let n = shards.max(1);
        let ring = Ring::new(n);
        let migrated = migrate_legacy(dir, &ring, n)?;
        let per_shard_cap = if mem_cap == 0 {
            0
        } else {
            (mem_cap / n).max(1)
        };
        let shards = (0..n)
            .map(|i| {
                let journal = Journal::open_with(&dir.join(shard_file_name(i)), fsync)?;
                Ok(Shard {
                    journal,
                    mem: Mutex::new(Lru {
                        cap: per_shard_cap,
                        map: HashMap::new(),
                        order: VecDeque::new(),
                    }),
                    mem_hits: AtomicU64::new(0),
                    disk_hits: AtomicU64::new(0),
                    misses: AtomicU64::new(0),
                    puts: AtomicU64::new(0),
                    put_failures: AtomicU64::new(0),
                })
            })
            .collect::<StudyResult<Vec<Shard>>>()?;
        Ok(ResultCache {
            ring,
            shards,
            migrated,
        })
    }

    /// The on-disk journal key for a content hash (same spelling in every
    /// shard and in the legacy file).
    pub fn key(hash: ConfigHash) -> String {
        format!("serve|{hash}")
    }

    /// The shard `hash` lives in.
    pub fn shard_for(&self, hash: ConfigHash) -> usize {
        self.ring.select(hash)
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Legacy records migrated into shard journals at open.
    pub fn migrated(&self) -> usize {
        self.migrated
    }

    /// Look `hash` up in its shard: memory first, then disk (promoting a
    /// disk hit).
    ///
    /// Exactly one tier counter moves in exactly one shard per call, so
    /// `hits() + misses()` equals the number of `get` calls — the
    /// conservation law the loopback stats tests assert, now summed
    /// across shards. Lookups that must not perturb the stats (a flight's
    /// double-check) use [`ResultCache::peek`].
    pub fn get(&self, hash: ConfigHash) -> Option<Record> {
        self.shards[self.ring.select(hash)].get(hash)
    }

    /// Hit-or-nothing lookup: behaves exactly like [`ResultCache::get`]
    /// on a hit (tier counter booked, recency touched, disk hits
    /// promoted) but books **no** counter on a miss. The reactor's
    /// inline fast path uses this to try serving a request without
    /// leaving the I/O thread; when it returns `None` the request takes
    /// the worker path, whose `get` books the one miss the conservation
    /// law expects.
    pub fn probe(&self, hash: ConfigHash) -> Option<Record> {
        self.shards[self.ring.select(hash)].probe(hash)
    }

    /// Silent lookup: serves from either tier of the owning shard without
    /// touching recency, promotion, or any hit/miss counter. This is the
    /// double-check a coalesced flight performs after winning the
    /// leadership race — the request already charged its one tier counter
    /// in the outer [`ResultCache::get`].
    pub fn peek(&self, hash: ConfigHash) -> Option<Record> {
        self.shards[self.ring.select(hash)].peek(hash)
    }

    /// Store a computed result in both tiers of the owning shard; returns
    /// the stored record (the exact value later hits will serve).
    ///
    /// A failed journal append (disk full, injected `journal-fail`)
    /// **degrades instead of erroring**: the record lands in the memory
    /// tier only and still serves byte-identically; the failure is
    /// counted ([`ResultCache::put_failures`], the journal's
    /// `write_errors`) so `op=health` can surface it, and a restart
    /// recomputes the lost record — degraded means *less durable*, never
    /// *wrong*.
    ///
    /// # Errors
    ///
    /// Non-I/O failures only (a record that cannot serialize at all).
    pub fn put(&self, hash: ConfigHash, sides: Vec<SideRecord>) -> StudyResult<Record> {
        self.shards[self.ring.select(hash)].put(hash, sides)
    }

    /// Memory-tier hits served, summed across shards.
    pub fn mem_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.mem_hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Disk-tier hits served (each also promoted), summed across shards.
    pub fn disk_hits(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.disk_hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Total hits across both tiers and all shards.
    pub fn hits(&self) -> u64 {
        self.mem_hits() + self.disk_hits()
    }

    /// Lookups that found nothing, summed across shards.
    pub fn misses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.misses.load(Ordering::Relaxed))
            .sum()
    }

    /// Results stored, summed across shards.
    pub fn puts(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.puts.load(Ordering::Relaxed))
            .sum()
    }

    /// Puts that degraded to memory-only after a failed journal append,
    /// summed across shards.
    pub fn put_failures(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.put_failures.load(Ordering::Relaxed))
            .sum()
    }

    /// Journal appends that failed at the I/O layer, summed across
    /// shards.
    pub fn write_errors(&self) -> usize {
        self.shards.iter().map(|s| s.journal.write_errors()).sum()
    }

    /// Records currently resident in memory, summed across shards.
    pub fn mem_len(&self) -> usize {
        self.shards.iter().map(|s| lock(&s.mem).map.len()).sum()
    }

    /// Distinct results durable on disk, summed across shards.
    pub fn disk_len(&self) -> usize {
        self.shards.iter().map(|s| s.journal.len()).sum()
    }

    /// On-disk records dropped at open because they failed CRC/parse,
    /// summed across shards (plus any dropped during legacy migration).
    pub fn corrupt_dropped(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.journal.corrupt_records())
            .sum()
    }

    /// Per-shard counters, index-aligned with the ring's shard numbers.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                mem_hits: s.mem_hits.load(Ordering::Relaxed),
                disk_hits: s.disk_hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                puts: s.puts.load(Ordering::Relaxed),
                entries_mem: lock(&s.mem).map.len(),
                entries_disk: s.journal.len(),
                corrupt_dropped: s.journal.corrupt_records(),
                write_errors: s.journal.write_errors(),
                put_failures: s.put_failures.load(Ordering::Relaxed),
                stale_lines: s.journal.stale_lines(),
            })
            .collect()
    }

    /// Compact every shard journal down to its live record set (atomic
    /// tmp + rename per shard). Returns the total stale lines reclaimed.
    ///
    /// # Errors
    ///
    /// Journal I/O during a shard rewrite; already-compacted shards stay
    /// compacted.
    pub fn compact(&self) -> StudyResult<usize> {
        let mut reclaimed = 0;
        for s in &self.shards {
            reclaimed += s.journal.compact()?;
        }
        Ok(reclaimed)
    }
}

/// Migrate a legacy single-file journal into per-shard files. Returns the
/// number of records moved. Idempotent: the legacy file is renamed to
/// `<name>.migrated` afterward, so a second open finds nothing to do.
fn migrate_legacy(dir: &Path, ring: &Ring, n: usize) -> StudyResult<usize> {
    let legacy_path: PathBuf = dir.join(JOURNAL_FILE);
    if !legacy_path.exists() {
        return Ok(0);
    }
    let legacy = Journal::open(&legacy_path)?;
    let records = legacy.records();
    let mut shard_journals: Vec<Option<Journal>> = (0..n).map(|_| None).collect();
    let mut moved = 0;
    for rec in records {
        // Keys are `serve|<16 hex digits>`; anything else is not ours to
        // place and is left behind in the renamed file.
        let Some(hex) = rec.key.strip_prefix("serve|") else {
            continue;
        };
        let Ok(raw) = u64::from_str_radix(hex, 16) else {
            continue;
        };
        let shard = ring.select(ConfigHash(raw));
        let journal = match &mut shard_journals[shard] {
            Some(j) => j,
            none => none.insert(Journal::open(&dir.join(shard_file_name(shard)))?),
        };
        // Last-record-wins journals make re-appending over an existing
        // key harmless, so a migration killed partway through simply
        // re-migrates on the next open.
        if journal.lookup(&rec.key).is_none() {
            journal.record(&rec.key, rec.sides)?;
            moved += 1;
        }
    }
    let renamed = legacy_path.with_extension("jsonl.migrated");
    std::fs::rename(&legacy_path, &renamed).map_err(|e| {
        paxsim_core::error::StudyError::JournalIo {
            path: legacy_path.display().to_string(),
            op: "rename-migrated",
            detail: e.to_string(),
        }
    })?;
    Ok(moved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxsim_machine::counters::Counters;
    use paxsim_perfmon::stats::Summary;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("paxsim_serve_cache_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sides(tag: u64) -> Vec<SideRecord> {
        vec![SideRecord {
            bench: "ep".into(),
            cycles: Summary::of(&[tag as f64, tag as f64 + 1.5]),
            speedup: Summary::of(&[1.0]),
            counters: Counters {
                instructions: tag,
                ..Counters::default()
            },
        }]
    }

    fn open(dir: &Path, mem_cap: usize, shards: usize) -> ResultCache {
        ResultCache::open(dir, mem_cap, shards).unwrap()
    }

    #[test]
    fn miss_put_hit_roundtrip() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("roundtrip");
        let c = open(&dir, 8, 4);
        let h = ConfigHash(0xabc);
        assert!(c.get(h).is_none());
        assert_eq!(c.misses(), 1);
        let stored = c.put(h, sides(7)).unwrap();
        let hit = c.get(h).unwrap();
        assert_eq!(hit.sides[0].counters.instructions, 7);
        assert_eq!(
            serde_json::to_string(&hit).unwrap(),
            serde_json::to_string(&stored).unwrap(),
            "hit must serve the exact stored record"
        );
        assert_eq!(c.mem_hits(), 1);
        assert_eq!(c.disk_hits(), 0);
    }

    #[test]
    fn ring_is_deterministic_total_and_stable() {
        let ring = Ring::new(8);
        for raw in [0u64, 1, 0xdead_beef, u64::MAX, 0x8000_0000_0000_0000] {
            let s = ring.select(ConfigHash(raw));
            assert!(s < 8);
            // Stable: a fresh ring and the exported helper agree.
            assert_eq!(s, Ring::new(8).select(ConfigHash(raw)));
            assert_eq!(s, shard_index(ConfigHash(raw), 8));
        }
    }

    #[test]
    fn ring_spreads_keys_across_every_shard() {
        let ring = Ring::new(8);
        let mut counts = [0usize; 8];
        for i in 0..4096u64 {
            counts[ring.select(ConfigHash(fnv1a(&i.to_le_bytes())))] += 1;
        }
        for (s, &n) in counts.iter().enumerate() {
            assert!(n > 0, "shard {s} owns no keys");
        }
    }

    #[test]
    fn resharding_moves_a_minority_of_keys() {
        // Consistent hashing: growing 8 -> 9 shards must relocate roughly
        // 1/9 of the keyspace, not reshuffle everything (a modulo scheme
        // moves ~8/9).
        let before = Ring::new(8);
        let after = Ring::new(9);
        let total = 4096u64;
        let moved = (0..total)
            .filter(|i| {
                let h = ConfigHash(fnv1a(&i.to_le_bytes()));
                before.select(h) != after.select(h)
            })
            .count();
        assert!(
            moved < total as usize / 3,
            "resharding moved {moved}/{total} keys — not consistent"
        );
        assert!(moved > 0, "growing the ring must move some keys");
    }

    #[test]
    fn puts_and_gets_route_to_the_same_shard() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("routing");
        let c = open(&dir, 64, 8);
        for raw in 0..64u64 {
            let h = ConfigHash(fnv1a(&raw.to_le_bytes()));
            c.put(h, sides(raw)).unwrap();
        }
        // Every key hits — from the shard that stored it.
        for raw in 0..64u64 {
            let h = ConfigHash(fnv1a(&raw.to_le_bytes()));
            assert_eq!(c.get(h).unwrap().sides[0].counters.instructions, raw);
        }
        assert_eq!(c.hits(), 64);
        assert_eq!(c.misses(), 0);
        // The shard files partition the records.
        let per_shard: usize = c.shard_stats().iter().map(|s| s.entries_disk).sum();
        assert_eq!(per_shard, 64);
        let populated = c
            .shard_stats()
            .iter()
            .filter(|s| s.entries_disk > 0)
            .count();
        assert!(populated >= 4, "64 keys landed in only {populated} shards");
    }

    #[test]
    fn disk_tier_survives_reopen_and_promotes() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("reopen");
        let h = ConfigHash(0x11);
        {
            let c = open(&dir, 8, 4);
            c.put(h, sides(3)).unwrap();
        }
        let c = open(&dir, 8, 4);
        assert_eq!(c.mem_len(), 0, "memory tier starts cold");
        assert_eq!(c.disk_len(), 1);
        assert!(c.get(h).is_some());
        assert_eq!(c.disk_hits(), 1);
        // Promoted: the second lookup is a memory hit.
        assert!(c.get(h).is_some());
        assert_eq!(c.mem_hits(), 1);
    }

    #[test]
    fn legacy_journal_migrates_into_shards() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("migrate");
        // Write a legacy-format single-file cache by hand.
        let legacy = Journal::open(&dir.join(JOURNAL_FILE)).unwrap();
        let keys: Vec<ConfigHash> = (0..10u64)
            .map(|i| ConfigHash(fnv1a(&i.to_le_bytes())))
            .collect();
        for (i, h) in keys.iter().enumerate() {
            legacy
                .record(&ResultCache::key(*h), sides(i as u64))
                .unwrap();
        }
        drop(legacy);
        let c = open(&dir, 64, 4);
        assert_eq!(c.migrated(), 10, "every legacy record migrates");
        assert!(!dir.join(JOURNAL_FILE).exists(), "legacy file renamed");
        for (i, h) in keys.iter().enumerate() {
            assert_eq!(
                c.get(*h).unwrap().sides[0].counters.instructions,
                i as u64,
                "migrated record must serve from its shard"
            );
        }
        // Idempotent: a reopen migrates nothing further.
        drop(c);
        let c = open(&dir, 64, 4);
        assert_eq!(c.migrated(), 0);
        assert_eq!(c.disk_len(), 10);
    }

    #[test]
    fn single_shard_lru_evicts_coldest_but_disk_retains() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("evict");
        let c = open(&dir, 2, 1);
        for i in 0..3u64 {
            c.put(ConfigHash(i), sides(i)).unwrap();
        }
        assert_eq!(c.mem_len(), 2);
        assert_eq!(c.disk_len(), 3);
        // Key 0 was evicted from memory; it still hits via disk.
        assert!(c.get(ConfigHash(0)).is_some());
        assert_eq!(c.disk_hits(), 1);
    }

    #[test]
    fn lru_touch_on_get_protects_hot_keys() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("touch");
        let c = open(&dir, 2, 1);
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        c.get(ConfigHash(0)); // 0 is now hottest
        c.put(ConfigHash(2), sides(2)).unwrap(); // evicts 1, not 0
        let before = c.disk_hits();
        assert!(c.get(ConfigHash(0)).is_some());
        assert_eq!(c.disk_hits(), before, "0 must still be a memory hit");
    }

    #[test]
    fn get_refreshes_recency() {
        let _quiet = paxsim_core::faultinject::quiesced();
        // Regression (LRU recency audit): `get` must move the key to the
        // hot end of `order`, otherwise a steadily re-read key gets
        // evicted as if it were cold.
        let dir = tmp("get_refreshes");
        let c = open(&dir, 2, 1);
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        // Re-read 0: it must now outrank 1 in recency.
        assert!(c.get(ConfigHash(0)).is_some());
        {
            let lru = lock(&c.shards[0].mem);
            assert_eq!(lru.order.back(), Some(&0), "get must refresh recency");
        }
        c.put(ConfigHash(2), sides(2)).unwrap();
        let mem_hits_before = c.mem_hits();
        assert!(c.get(ConfigHash(0)).is_some());
        assert_eq!(
            c.mem_hits(),
            mem_hits_before + 1,
            "hot key 0 must survive the eviction (1 was coldest)"
        );
        let lru = lock(&c.shards[0].mem);
        assert!(!lru.map.contains_key(&1), "1 was the eviction victim");
    }

    #[test]
    fn double_put_then_evict() {
        let _quiet = paxsim_core::faultinject::quiesced();
        // Regression (LRU reinsert audit): re-`put` of a resident key must
        // not leave a stale duplicate in `order` — the next eviction would
        // pop the duplicate and remove the wrong key (or nothing), letting
        // `map` outgrow `cap` and desynchronizing the two structures.
        let dir = tmp("double_put");
        let c = open(&dir, 2, 1);
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        c.put(ConfigHash(0), sides(99)).unwrap(); // reinsert, now hottest
        {
            let lru = lock(&c.shards[0].mem);
            assert_eq!(
                lru.order.len(),
                lru.map.len(),
                "reinsert must not duplicate the key in order"
            );
        }
        c.put(ConfigHash(2), sides(2)).unwrap(); // must evict 1, the coldest
        let lru = lock(&c.shards[0].mem);
        assert_eq!(lru.map.len(), 2, "cap respected after reinsert");
        assert_eq!(lru.order.len(), 2);
        assert!(lru.map.contains_key(&0), "reinserted key stays resident");
        assert!(lru.map.contains_key(&2));
        assert!(!lru.map.contains_key(&1));
        assert_eq!(
            lru.peek(0).unwrap().sides[0].counters.instructions,
            99,
            "reinsert serves the newest value"
        );
    }

    #[test]
    fn peek_serves_both_tiers_without_stats_or_recency() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("peek");
        let c = open(&dir, 2, 1);
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        // Memory peek: no counter, no recency change.
        assert!(c.peek(ConfigHash(0)).is_some());
        assert_eq!(c.hits() + c.misses(), 0, "peek must not book stats");
        {
            let lru = lock(&c.shards[0].mem);
            assert_eq!(lru.order.back(), Some(&1), "peek must not touch");
        }
        // Disk peek: 0 evicted from memory still peeks via the journal,
        // without promotion.
        c.put(ConfigHash(2), sides(2)).unwrap(); // evicts 0
        assert!(c.peek(ConfigHash(0)).is_some());
        assert_eq!(c.disk_hits(), 0);
        assert_eq!(c.mem_len(), 2, "no promotion on peek");
        // Absent key: still no stats.
        assert!(c.peek(ConfigHash(0xffff)).is_none());
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn corrupt_shard_record_is_dropped_not_served() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("corrupt");
        let h = ConfigHash(0xdead);
        let shard = shard_index(h, 4);
        {
            let c = open(&dir, 8, 4);
            c.put(h, sides(9)).unwrap();
        }
        paxsim_core::faultinject::flip_bit(&dir.join(shard_file_name(shard)), 40).unwrap();
        let c = open(&dir, 8, 4);
        assert_eq!(c.corrupt_dropped(), 1);
        assert!(c.get(h).is_none(), "corrupt record must read as a miss");
        // A recompute appends a fresh record that serves again.
        c.put(h, sides(10)).unwrap();
        let c2 = open(&dir, 8, 4);
        assert_eq!(c2.get(h).unwrap().sides[0].counters.instructions, 10);
    }

    #[test]
    fn put_degrades_to_memory_on_journal_fault() {
        paxsim_core::faultinject::with_plan("journal-fail:1", || {
            let dir = tmp("degraded_put");
            let c = open(&dir, 8, 2);
            let h = ConfigHash(0x77);
            let stored = c.put(h, sides(5)).unwrap();
            assert_eq!(stored.sides[0].counters.instructions, 5);
            assert_eq!(c.put_failures(), 1, "degraded put must be counted");
            assert_eq!(c.write_errors(), 1, "journal must count the failed append");
            assert_eq!(c.puts(), 1, "a degraded put is still a put");
            let hit = c.get(h).unwrap();
            assert_eq!(
                serde_json::to_string(&hit).unwrap(),
                serde_json::to_string(&stored).unwrap(),
                "degraded record must serve byte-identically"
            );
            assert_eq!(c.mem_hits(), 1);
            // Not durable: a reopen recomputes (misses), never serves junk.
            drop(c);
            let c = open(&dir, 8, 2);
            assert!(c.get(h).is_none(), "memory-only record must not survive");
            assert_eq!(c.corrupt_dropped(), 0, "nothing torn landed on disk");
        });
    }

    #[test]
    fn compact_reclaims_stale_shard_lines() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("compact");
        let c = open(&dir, 8, 2);
        let h = ConfigHash(0x5);
        c.put(h, sides(1)).unwrap();
        c.put(h, sides(2)).unwrap(); // overwrite: one stale line
        assert_eq!(
            c.shard_stats().iter().map(|s| s.stale_lines).sum::<usize>(),
            1
        );
        assert_eq!(c.compact().unwrap(), 1, "one overwrite reclaimed");
        assert_eq!(c.get(h).unwrap().sides[0].counters.instructions, 2);
        // Idempotent: nothing further to reclaim, reopen serves the live set.
        assert_eq!(c.compact().unwrap(), 0);
        drop(c);
        let c = open(&dir, 8, 2);
        assert_eq!(c.get(h).unwrap().sides[0].counters.instructions, 2);
    }

    #[test]
    fn conservation_holds_across_shards() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let dir = tmp("conserve");
        let c = open(&dir, 32, 8);
        let mut gets = 0u64;
        for raw in 0..40u64 {
            let h = ConfigHash(fnv1a(&raw.to_le_bytes()));
            if c.get(h).is_none() {
                c.put(h, sides(raw)).unwrap();
            }
            gets += 1;
            if raw % 3 == 0 {
                c.get(h);
                gets += 1;
            }
        }
        assert_eq!(
            c.hits() + c.misses(),
            gets,
            "one tier counter per get, summed over shards"
        );
        // The per-shard breakdown sums to the aggregate.
        let stats = c.shard_stats();
        let sum_hits: u64 = stats.iter().map(|s| s.mem_hits + s.disk_hits).sum();
        let sum_misses: u64 = stats.iter().map(|s| s.misses).sum();
        assert_eq!(sum_hits, c.hits());
        assert_eq!(sum_misses, c.misses());
    }
}
