//! The two-tier content-addressed result cache.
//!
//! Tier 1 is an in-memory LRU keyed by the request's
//! [`ConfigHash`](paxsim_core::hash::ConfigHash); tier 2 is an on-disk
//! [`Journal`](paxsim_core::journal::Journal) — the same CRC-per-record
//! JSONL format the resilient sweep drivers checkpoint into, so results
//! survive daemon restarts and every corruption mode the journal detects
//! (bit rot, truncated tails) causes a recompute, never a wrong answer.
//! Disk hits are promoted into the LRU; every put lands in both tiers
//! (the journal flushes per append, so "flush the cache on drain" is a
//! no-op by construction).
//!
//! Keys on disk are `serve|<16-hex content hash>`; duplicate keys are
//! legal and last-record-wins, so a recompute after corruption simply
//! appends a fresh record.

use std::collections::{HashMap, VecDeque};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use paxsim_core::error::StudyResult;
use paxsim_core::hash::ConfigHash;
use paxsim_core::journal::{Journal, Record, SideRecord};

/// On-disk journal file name inside the cache directory.
pub const JOURNAL_FILE: &str = "results.jsonl";

struct Lru {
    cap: usize,
    map: HashMap<u64, Record>,
    /// Keys from coldest (front) to hottest (back).
    order: VecDeque<u64>,
}

impl Lru {
    fn touch(&mut self, key: u64) {
        if let Some(pos) = self.order.iter().position(|&k| k == key) {
            self.order.remove(pos);
        }
        self.order.push_back(key);
    }

    fn get(&mut self, key: u64) -> Option<Record> {
        let rec = self.map.get(&key).cloned()?;
        self.touch(key);
        Some(rec)
    }

    /// Non-mutating lookup: no recency touch, no promotion.
    fn peek(&self, key: u64) -> Option<Record> {
        self.map.get(&key).cloned()
    }

    fn put(&mut self, key: u64, rec: Record) {
        if self.cap == 0 {
            return;
        }
        self.map.insert(key, rec);
        self.touch(key);
        while self.map.len() > self.cap {
            let coldest = self.order.pop_front().expect("order tracks map");
            self.map.remove(&coldest);
        }
    }
}

/// The two-tier cache. Thread-safe; shared across every connection.
pub struct ResultCache {
    journal: Journal,
    mem: Mutex<Lru>,
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    puts: AtomicU64,
}

fn lock(m: &Mutex<Lru>) -> MutexGuard<'_, Lru> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl ResultCache {
    /// Open the cache rooted at `dir` (created if absent), holding at
    /// most `mem_cap` records in memory.
    ///
    /// # Errors
    ///
    /// Journal I/O errors opening or reading the on-disk tier.
    pub fn open(dir: &Path, mem_cap: usize) -> StudyResult<ResultCache> {
        let journal = Journal::open(&dir.join(JOURNAL_FILE))?;
        Ok(ResultCache {
            journal,
            mem: Mutex::new(Lru {
                cap: mem_cap,
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            mem_hits: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        })
    }

    /// The on-disk journal key for a content hash.
    pub fn key(hash: ConfigHash) -> String {
        format!("serve|{hash}")
    }

    /// Look `hash` up: memory first, then disk (promoting a disk hit).
    ///
    /// Exactly one tier counter moves per call (mem hit, disk hit, or
    /// miss), so `hits() + misses()` equals the number of `get` calls —
    /// the conservation law the loopback stats tests assert. Lookups that
    /// must not perturb the stats (a flight's double-check) use
    /// [`ResultCache::peek`].
    pub fn get(&self, hash: ConfigHash) -> Option<Record> {
        static MEM: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.cache.mem_hits");
        static DISK: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.cache.disk_hits");
        static MISS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.cache.misses");
        if let Some(rec) = lock(&self.mem).get(hash.0) {
            self.mem_hits.fetch_add(1, Ordering::Relaxed);
            MEM.inc();
            return Some(rec);
        }
        if let Some(rec) = self.journal.lookup(&Self::key(hash)) {
            self.disk_hits.fetch_add(1, Ordering::Relaxed);
            DISK.inc();
            lock(&self.mem).put(hash.0, rec.clone());
            return Some(rec);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        MISS.inc();
        None
    }

    /// Silent lookup: serves from either tier without touching recency,
    /// promotion, or any hit/miss counter. This is the double-check a
    /// coalesced flight performs after winning the leadership race — the
    /// request already charged its one tier counter in the outer
    /// [`ResultCache::get`], so counting the re-check would double-book.
    pub fn peek(&self, hash: ConfigHash) -> Option<Record> {
        if let Some(rec) = lock(&self.mem).peek(hash.0) {
            return Some(rec);
        }
        self.journal.lookup(&Self::key(hash))
    }

    /// Store a computed result in both tiers; returns the stored record
    /// (the exact value later hits will serve).
    ///
    /// # Errors
    ///
    /// Journal append failures (disk full, permissions). The memory tier
    /// is *not* updated on a failed append — a result that cannot be made
    /// durable stays a miss, so a restart never silently loses it.
    pub fn put(&self, hash: ConfigHash, sides: Vec<SideRecord>) -> StudyResult<Record> {
        let key = Self::key(hash);
        self.journal.record(&key, sides)?;
        let rec = self
            .journal
            .lookup(&key)
            .expect("a just-recorded key is present");
        self.puts.fetch_add(1, Ordering::Relaxed);
        static PUTS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.cache.puts");
        PUTS.inc();
        lock(&self.mem).put(hash.0, rec.clone());
        Ok(rec)
    }

    /// Memory-tier hits served.
    pub fn mem_hits(&self) -> u64 {
        self.mem_hits.load(Ordering::Relaxed)
    }

    /// Disk-tier hits served (each also promoted to memory).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Total hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.mem_hits() + self.disk_hits()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Results stored.
    pub fn puts(&self) -> u64 {
        self.puts.load(Ordering::Relaxed)
    }

    /// Records currently resident in the memory tier.
    pub fn mem_len(&self) -> usize {
        lock(&self.mem).map.len()
    }

    /// Distinct results durable on disk.
    pub fn disk_len(&self) -> usize {
        self.journal.len()
    }

    /// On-disk records dropped at open because they failed CRC/parse.
    pub fn corrupt_dropped(&self) -> usize {
        self.journal.corrupt_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paxsim_machine::counters::Counters;
    use paxsim_perfmon::stats::Summary;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("paxsim_serve_cache_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sides(tag: u64) -> Vec<SideRecord> {
        vec![SideRecord {
            bench: "ep".into(),
            cycles: Summary::of(&[tag as f64, tag as f64 + 1.5]),
            speedup: Summary::of(&[1.0]),
            counters: Counters {
                instructions: tag,
                ..Counters::default()
            },
        }]
    }

    #[test]
    fn miss_put_hit_roundtrip() {
        let dir = tmp("roundtrip");
        let c = ResultCache::open(&dir, 8).unwrap();
        let h = ConfigHash(0xabc);
        assert!(c.get(h).is_none());
        assert_eq!(c.misses(), 1);
        let stored = c.put(h, sides(7)).unwrap();
        let hit = c.get(h).unwrap();
        assert_eq!(hit.sides[0].counters.instructions, 7);
        assert_eq!(
            serde_json::to_string(&hit).unwrap(),
            serde_json::to_string(&stored).unwrap(),
            "hit must serve the exact stored record"
        );
        assert_eq!(c.mem_hits(), 1);
        assert_eq!(c.disk_hits(), 0);
    }

    #[test]
    fn disk_tier_survives_reopen_and_promotes() {
        let dir = tmp("reopen");
        let h = ConfigHash(0x11);
        {
            let c = ResultCache::open(&dir, 8).unwrap();
            c.put(h, sides(3)).unwrap();
        }
        let c = ResultCache::open(&dir, 8).unwrap();
        assert_eq!(c.mem_len(), 0, "memory tier starts cold");
        assert_eq!(c.disk_len(), 1);
        assert!(c.get(h).is_some());
        assert_eq!(c.disk_hits(), 1);
        // Promoted: the second lookup is a memory hit.
        assert!(c.get(h).is_some());
        assert_eq!(c.mem_hits(), 1);
    }

    #[test]
    fn lru_evicts_coldest_but_disk_retains() {
        let dir = tmp("evict");
        let c = ResultCache::open(&dir, 2).unwrap();
        for i in 0..3u64 {
            c.put(ConfigHash(i), sides(i)).unwrap();
        }
        assert_eq!(c.mem_len(), 2);
        assert_eq!(c.disk_len(), 3);
        // Key 0 was evicted from memory; it still hits via disk.
        assert!(c.get(ConfigHash(0)).is_some());
        assert_eq!(c.disk_hits(), 1);
    }

    #[test]
    fn lru_touch_on_get_protects_hot_keys() {
        let dir = tmp("touch");
        let c = ResultCache::open(&dir, 2).unwrap();
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        c.get(ConfigHash(0)); // 0 is now hottest
        c.put(ConfigHash(2), sides(2)).unwrap(); // evicts 1, not 0
        let before = c.disk_hits();
        assert!(c.get(ConfigHash(0)).is_some());
        assert_eq!(c.disk_hits(), before, "0 must still be a memory hit");
    }

    #[test]
    fn get_refreshes_recency() {
        // Regression (LRU recency audit): `get` must move the key to the
        // hot end of `order`, otherwise a steadily re-read key gets
        // evicted as if it were cold.
        let dir = tmp("get_refreshes");
        let c = ResultCache::open(&dir, 2).unwrap();
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        // Re-read 0: it must now outrank 1 in recency.
        assert!(c.get(ConfigHash(0)).is_some());
        {
            let lru = lock(&c.mem);
            assert_eq!(lru.order.back(), Some(&0), "get must refresh recency");
        }
        c.put(ConfigHash(2), sides(2)).unwrap();
        let mem_hits_before = c.mem_hits();
        assert!(c.get(ConfigHash(0)).is_some());
        assert_eq!(
            c.mem_hits(),
            mem_hits_before + 1,
            "hot key 0 must survive the eviction (1 was coldest)"
        );
        let lru = lock(&c.mem);
        assert!(!lru.map.contains_key(&1), "1 was the eviction victim");
    }

    #[test]
    fn double_put_then_evict() {
        // Regression (LRU reinsert audit): re-`put` of a resident key must
        // not leave a stale duplicate in `order` — the next eviction would
        // pop the duplicate and remove the wrong key (or nothing), letting
        // `map` outgrow `cap` and desynchronizing the two structures.
        let dir = tmp("double_put");
        let c = ResultCache::open(&dir, 2).unwrap();
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        c.put(ConfigHash(0), sides(99)).unwrap(); // reinsert, now hottest
        {
            let lru = lock(&c.mem);
            assert_eq!(
                lru.order.len(),
                lru.map.len(),
                "reinsert must not duplicate the key in order"
            );
        }
        c.put(ConfigHash(2), sides(2)).unwrap(); // must evict 1, the coldest
        let lru = lock(&c.mem);
        assert_eq!(lru.map.len(), 2, "cap respected after reinsert");
        assert_eq!(lru.order.len(), 2);
        assert!(lru.map.contains_key(&0), "reinserted key stays resident");
        assert!(lru.map.contains_key(&2));
        assert!(!lru.map.contains_key(&1));
        assert_eq!(
            lru.peek(0).unwrap().sides[0].counters.instructions,
            99,
            "reinsert serves the newest value"
        );
    }

    #[test]
    fn peek_serves_both_tiers_without_stats_or_recency() {
        let dir = tmp("peek");
        let c = ResultCache::open(&dir, 2).unwrap();
        c.put(ConfigHash(0), sides(0)).unwrap();
        c.put(ConfigHash(1), sides(1)).unwrap();
        // Memory peek: no counter, no recency change.
        assert!(c.peek(ConfigHash(0)).is_some());
        assert_eq!(c.hits() + c.misses(), 0, "peek must not book stats");
        {
            let lru = lock(&c.mem);
            assert_eq!(lru.order.back(), Some(&1), "peek must not touch");
        }
        // Disk peek: 0 evicted from memory still peeks via the journal,
        // without promotion.
        c.put(ConfigHash(2), sides(2)).unwrap(); // evicts 0
        assert!(c.peek(ConfigHash(0)).is_some());
        assert_eq!(c.disk_hits(), 0);
        assert_eq!(c.mem_len(), 2, "no promotion on peek");
        // Absent key: still no stats.
        assert!(c.peek(ConfigHash(0xffff)).is_none());
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn corrupt_disk_record_is_dropped_not_served() {
        let dir = tmp("corrupt");
        let h = ConfigHash(0xdead);
        {
            let c = ResultCache::open(&dir, 8).unwrap();
            c.put(h, sides(9)).unwrap();
        }
        paxsim_core::faultinject::flip_bit(&dir.join(JOURNAL_FILE), 40).unwrap();
        let c = ResultCache::open(&dir, 8).unwrap();
        assert_eq!(c.corrupt_dropped(), 1);
        assert!(c.get(h).is_none(), "corrupt record must read as a miss");
        // A recompute appends a fresh record that serves again.
        c.put(h, sides(10)).unwrap();
        let c2 = ResultCache::open(&dir, 8).unwrap();
        assert_eq!(c2.get(h).unwrap().sides[0].counters.instructions, 10);
    }
}
