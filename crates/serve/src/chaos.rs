//! Serve-layer chaos hooks: the bridge between the reactor/worker hot
//! paths and [`paxsim_core::faultinject`].
//!
//! Each hook is one relaxed atomic increment plus the fault harness's
//! one relaxed load when no plan is installed — the production cost is
//! negligible. When a plan *is* live (`PAXSIM_FAULTS` or
//! [`with_plan`](paxsim_core::faultinject::with_plan)), the hooks fire
//! deterministic faults at their choke points:
//!
//! | hook | fault kind | effect |
//! |---|---|---|
//! | [`worker_job`] | `serve-worker-panic:<period>` | panics inside the worker's isolation boundary |
//! | [`conn_kill`] | `serve-conn-kill:<period>` | reactor drops the connection after dispatch |
//! | [`write_cap`] | `serve-partial-write` | caps one reactor write pass at a single byte |
//! | (in `core::journal`) | `journal-fail` | fails the next journal append |
//! | (in `serve::cache`) | `serve-shard-slow:<ms>` | stalls a shard lookup |
//! | (in `serve::service`) | `serve-batch-panic` | panics the batch-leader executor |
//!
//! The per-process frame/job counters feed the `<period>` matchers, so a
//! "~1% fault rate" plan is just `serve-worker-panic:97:N` — deterministic,
//! replayable, and countable. Every fired fault is also counted here (and
//! mirrored into obs) so soak tests can assert *how much* chaos actually
//! happened, not just that the run survived it.

use std::sync::atomic::{AtomicU64, Ordering};

use paxsim_core::faultinject;

static JOBS: AtomicU64 = AtomicU64::new(0);
static FRAMES: AtomicU64 = AtomicU64::new(0);
static WORKER_PANICS: AtomicU64 = AtomicU64::new(0);
static CONN_KILLS: AtomicU64 = AtomicU64::new(0);
static PARTIAL_WRITES: AtomicU64 = AtomicU64::new(0);

/// Fired chaos-fault totals for this process:
/// `(worker_panics, conn_kills, partial_writes)`.
pub fn fired() -> (u64, u64, u64) {
    (
        WORKER_PANICS.load(Ordering::Relaxed),
        CONN_KILLS.load(Ordering::Relaxed),
        PARTIAL_WRITES.load(Ordering::Relaxed),
    )
}

/// Worker hook: called at the top of every pool-dispatched job, inside
/// the worker's `catch_unwind` boundary. Panics when a
/// `serve-worker-panic:<period>` fault matches this job number.
#[inline]
pub fn worker_job() {
    let n = JOBS.fetch_add(1, Ordering::Relaxed) + 1;
    if faultinject::serve_worker_panic(n) {
        WORKER_PANICS.fetch_add(1, Ordering::Relaxed);
        static OBS: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.chaos.worker_panics");
        OBS.inc();
        panic!("injected serve worker fault (job {n})");
    }
}

/// Reactor hook: called once per dispatched frame. True when a
/// `serve-conn-kill:<period>` fault matches — the reactor must drop the
/// connection that carried the frame (modelling a peer reset / network
/// partition mid-request).
#[inline]
pub fn conn_kill() -> bool {
    let n = FRAMES.fetch_add(1, Ordering::Relaxed) + 1;
    if faultinject::serve_conn_kill(n) {
        CONN_KILLS.fetch_add(1, Ordering::Relaxed);
        static OBS: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.chaos.conn_kills");
        OBS.inc();
        return true;
    }
    false
}

/// Reactor hook: byte cap for one write pass. `Some(1)` while a
/// `serve-partial-write` fault has budget — the reactor writes a single
/// byte and leaves the rest queued, exercising the partial-write
/// bookkeeping a saturated socket produces.
#[inline]
pub fn write_cap() -> Option<usize> {
    if faultinject::serve_partial_write() {
        PARTIAL_WRITES.fetch_add(1, Ordering::Relaxed);
        static OBS: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.chaos.partial_writes");
        OBS.inc();
        return Some(1);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_quiet_without_a_plan() {
        let _quiet = faultinject::quiesced();
        let before = fired();
        worker_job();
        assert!(!conn_kill());
        assert_eq!(write_cap(), None);
        assert_eq!(fired(), before, "no plan, no fired faults");
    }

    #[test]
    fn worker_panic_fires_on_period_and_is_counted() {
        faultinject::with_plan("serve-worker-panic:1:1", || {
            let (panics0, _, _) = fired();
            let r = std::panic::catch_unwind(worker_job);
            assert!(r.is_err(), "period 1 must fire on the next job");
            assert_eq!(fired().0, panics0 + 1);
            worker_job(); // budget spent: quiet
        });
    }

    #[test]
    fn partial_write_cap_respects_budget() {
        faultinject::with_plan("serve-partial-write:2", || {
            assert_eq!(write_cap(), Some(1));
            assert_eq!(write_cap(), Some(1));
            assert_eq!(write_cap(), None, "budget of 2 spent");
        });
    }
}
