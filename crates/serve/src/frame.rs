//! NDJSON frame reassembly for the non-blocking reactor.
//!
//! The wire protocol is one JSON request per `\n`-terminated line, but a
//! non-blocking socket hands the reactor arbitrary byte chunks: half a
//! frame, three frames and a tail, a frame split mid-UTF-8-sequence. A
//! [`FrameBuffer`] accumulates those chunks and yields complete frames,
//! converting the two malformed-input modes into *typed* frame errors
//! instead of panics or hangs:
//!
//! * **oversized** — a line longer than [`MAX_FRAME_BYTES`] cannot be a
//!   legal request (the largest real request, a full inline
//!   `MachineConfig`, is a few KiB). The buffer stops accumulating,
//!   reports [`FrameError::Oversized`] once, and discards bytes until the
//!   next `\n` so the connection resynchronizes on the following frame
//!   instead of buffering unboundedly or dying.
//! * **non-UTF-8** — a complete line that is not valid UTF-8 reports
//!   [`FrameError::NotUtf8`]; the connection keeps serving.
//!
//! Whitespace-only lines are silently skipped (they match the blocking
//! server's historical `trim().is_empty()` behavior, and clients use a
//! bare newline as a keep-alive probe).

/// Hard per-frame byte cap. A real request — even one carrying a full
/// inline machine model — is a few KiB; a megabyte line is a protocol
/// violation or an attack, never a request worth buffering.
pub const MAX_FRAME_BYTES: usize = 256 * 1024;

/// A typed framing failure. Both map to one `bad-request` reply line and
/// leave the connection serving subsequent frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line exceeded the byte cap; `discarded` bytes so far (the
    /// count keeps growing until the terminating newline resyncs us).
    Oversized { limit: usize },
    /// The line was complete but not valid UTF-8.
    NotUtf8,
}

impl FrameError {
    /// Human detail for the `bad-request` reply.
    pub fn detail(&self) -> String {
        match self {
            FrameError::Oversized { limit } => {
                format!("request line exceeds {limit} bytes")
            }
            FrameError::NotUtf8 => "request line is not valid UTF-8".to_string(),
        }
    }
}

/// Reassembles `\n`-delimited frames from arbitrary byte chunks.
pub struct FrameBuffer {
    buf: Vec<u8>,
    limit: usize,
    /// Set while discarding an oversized line: the error has been
    /// reported, bytes are dropped until the next `\n`.
    discarding: bool,
}

impl Default for FrameBuffer {
    fn default() -> Self {
        FrameBuffer::new(MAX_FRAME_BYTES)
    }
}

impl FrameBuffer {
    /// A buffer enforcing the given per-frame byte cap.
    pub fn new(limit: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            limit: limit.max(1),
            discarding: false,
        }
    }

    /// Append one chunk read from the socket.
    pub fn push(&mut self, chunk: &[u8]) {
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes currently buffered (the partial tail frame).
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// Extract the next complete frame, if any. Returns:
    ///
    /// * `Some(Ok(line))` — one complete, UTF-8, within-limit request
    ///   line (already stripped of its terminator; may need trimming);
    /// * `Some(Err(e))` — a typed framing failure for exactly one bad
    ///   line; the buffer has already resynchronized past it (or entered
    ///   discard mode for an oversized line still in flight);
    /// * `None` — no complete frame buffered; read more bytes.
    ///
    /// Call in a loop until `None`; whitespace-only frames are consumed
    /// internally and never returned.
    pub fn next_frame(&mut self) -> Option<Result<String, FrameError>> {
        loop {
            if self.discarding {
                // Drop everything up to and including the resync newline.
                match self.buf.iter().position(|&b| b == b'\n') {
                    Some(nl) => {
                        self.buf.drain(..=nl);
                        self.discarding = false;
                    }
                    None => {
                        self.buf.clear();
                        return None;
                    }
                }
                continue;
            }
            match self.buf.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let line: Vec<u8> = self.buf.drain(..=nl).take(nl).collect();
                    if line.len() > self.limit {
                        // Terminated but over-limit (the whole line arrived
                        // in fewer pushes than the cap check below saw).
                        return Some(Err(FrameError::Oversized { limit: self.limit }));
                    }
                    match String::from_utf8(line) {
                        Ok(s) => {
                            if s.trim().is_empty() {
                                continue;
                            }
                            return Some(Ok(s));
                        }
                        Err(_) => return Some(Err(FrameError::NotUtf8)),
                    }
                }
                None => {
                    if self.buf.len() > self.limit {
                        // Unterminated and already too long: report once,
                        // then discard until the next newline arrives.
                        self.buf.clear();
                        self.discarding = true;
                        return Some(Err(FrameError::Oversized { limit: self.limit }));
                    }
                    return None;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frames(fb: &mut FrameBuffer) -> Vec<Result<String, FrameError>> {
        std::iter::from_fn(|| fb.next_frame()).collect()
    }

    #[test]
    fn whole_frames_pass_through() {
        let mut fb = FrameBuffer::new(64);
        fb.push(b"{\"op\":\"stats\"}\n{\"op\":\"metrics\"}\n");
        assert_eq!(
            frames(&mut fb),
            vec![
                Ok("{\"op\":\"stats\"}".to_string()),
                Ok("{\"op\":\"metrics\"}".to_string())
            ]
        );
    }

    #[test]
    fn split_frame_reassembles() {
        let mut fb = FrameBuffer::new(64);
        fb.push(b"{\"op\":");
        assert_eq!(fb.next_frame(), None);
        fb.push(b"\"stats\"}");
        assert_eq!(fb.next_frame(), None);
        fb.push(b"\n");
        assert_eq!(fb.next_frame(), Some(Ok("{\"op\":\"stats\"}".to_string())));
        assert_eq!(fb.next_frame(), None);
        assert_eq!(fb.pending(), 0);
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut fb = FrameBuffer::new(64);
        fb.push(b"\n  \n\r\nreal\n\n");
        assert_eq!(frames(&mut fb), vec![Ok("real".to_string())]);
    }

    #[test]
    fn oversized_terminated_line_is_one_typed_error() {
        let mut fb = FrameBuffer::new(8);
        fb.push(b"0123456789\nok\n");
        assert_eq!(
            frames(&mut fb),
            vec![
                Err(FrameError::Oversized { limit: 8 }),
                Ok("ok".to_string())
            ]
        );
    }

    #[test]
    fn oversized_unterminated_line_reports_once_and_resyncs() {
        let mut fb = FrameBuffer::new(8);
        fb.push(b"aaaaaaaaaaaa"); // over the cap, no newline yet
        assert_eq!(
            fb.next_frame(),
            Some(Err(FrameError::Oversized { limit: 8 }))
        );
        // Still discarding: more garbage produces no duplicate error.
        fb.push(b"bbbbbbbbbbbbbbbb");
        assert_eq!(fb.next_frame(), None);
        // The newline resyncs; the following frame serves normally.
        fb.push(b"ccc\nnext\n");
        assert_eq!(frames(&mut fb), vec![Ok("next".to_string())]);
    }

    #[test]
    fn non_utf8_line_is_typed_not_fatal() {
        let mut fb = FrameBuffer::new(64);
        fb.push(&[0xff, 0xfe, b'\n', b'o', b'k', b'\n']);
        assert_eq!(
            frames(&mut fb),
            vec![Err(FrameError::NotUtf8), Ok("ok".to_string())]
        );
    }

    #[test]
    fn byte_at_a_time_delivery() {
        let mut fb = FrameBuffer::new(64);
        let line = b"{\"op\":\"stats\"}\n";
        let mut got = Vec::new();
        for &b in line {
            fb.push(&[b]);
            while let Some(f) = fb.next_frame() {
                got.push(f);
            }
        }
        assert_eq!(got, vec![Ok("{\"op\":\"stats\"}".to_string())]);
    }
}
