//! # paxsim-serve
//!
//! A long-running simulation service over the paxsim experiment stack.
//! Clients describe a simulation point — NAS kernel, problem class,
//! Table 1 configuration (or a full machine model), trial count — as one
//! line of JSON over TCP or a Unix socket; the daemon canonicalizes the
//! request into a stable content hash ([`paxsim_core::hash`]) and answers
//! from a two-tier content-addressed cache:
//!
//! * an in-memory LRU for the hot working set;
//! * a CRC-checked on-disk journal (the same record format the resilient
//!   sweep drivers checkpoint into), so results survive restarts and
//!   corruption is *detected* — a bit-flipped entry recomputes, it is
//!   never served.
//!
//! The cache is **sharded**: N independent shards selected by
//! consistent-hashing the content hash, each with its own LRU and
//! journal, so lookups for different keys never contend on one lock
//! ([`cache`]).
//!
//! Misses are computed through the existing drivers on a shared
//! [`TraceStore`](paxsim_core::store::TraceStore) and the bounded,
//! panic-isolating [`pool`](paxsim_core::pool) executor. Identical
//! concurrent requests collapse to one computation
//! ([`Inflight`](paxsim_core::inflight::Inflight)); *compatible* distinct
//! requests — same study, different sweep coordinates — gather in the
//! [`batch`] layer and run as one shared sweep under one admission-gate
//! permit. Overload is a typed rejection, not a hung socket. `SIGTERM`
//! drains gracefully: in-flight work finishes and its replies flush, new
//! connections are refused at the socket, and every handler thread is
//! joined.
//!
//! The connection layer is a non-blocking reactor ([`server`]): one
//! thread per listener plus a fixed compute-worker pool, with
//! per-connection frame reassembly ([`frame`]) — thread count is
//! independent of connection count.
//!
//! The wire protocol is documented in `DESIGN.md` §10 (scaling layers in
//! §13); [`protocol`] is the single source of truth for parsing and
//! rendering it.
//!
//! Failure behavior is a first-class surface (DESIGN.md §14): the
//! [`chaos`] hooks extend the deterministic fault harness into the
//! reactor, workers, batcher, and shard journals; the [`breaker`]
//! quarantines deterministically-crashing configs with typed rejections;
//! the admission gate sheds deadline-expired queued work; and `op=health`
//! reports per-shard + breaker state for orchestrators.

pub mod batch;
pub mod breaker;
pub mod cache;
pub mod chaos;
pub mod frame;
pub mod protocol;
pub mod server;
pub mod service;

pub use cache::ResultCache;
pub use protocol::Request;
pub use server::Server;
pub use service::{ServeConfig, Service};
