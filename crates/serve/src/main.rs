//! The `paxsim-serve` daemon.
//!
//! ```text
//! paxsim-serve [--tcp ADDR] [--unix PATH] [--cache DIR]
//!              [--mem-cap N] [--max-running N] [--max-queue N]
//!              [--deadline-ms N] [--shards N] [--batch-window-ms N]
//!              [--workers N] [--fsync] [--breaker-threshold N]
//!              [--breaker-cooldown-ms N]
//! ```
//!
//! Listens for newline-delimited JSON requests (protocol in DESIGN.md
//! §10) until `SIGTERM`/`SIGINT`, then drains gracefully: in-flight work
//! finishes, new computations are refused, and the process exits 0 once
//! quiet. Fault injection via `PAXSIM_FAULTS` is honored exactly as in
//! the sweep drivers — an injected cell panic is retried, never fatal to
//! the daemon.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use paxsim_serve::{ServeConfig, Server, Service};

static TERM: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

fn install_term_handler() {
    extern "C" {
        // POSIX signal(2); declared directly so the daemon needs no
        // external crate. Handler runs on the signal stack and only
        // flips an atomic — async-signal-safe.
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term as *const () as usize);
        signal(SIGINT, on_term as *const () as usize);
    }
}

struct Args {
    tcp: Option<String>,
    unix: Option<PathBuf>,
    cfg: ServeConfig,
    grace: Duration,
}

fn usage() -> ! {
    eprintln!(
        "usage: paxsim-serve [--tcp ADDR] [--unix PATH] [--cache DIR] \
         [--mem-cap N] [--max-running N] [--max-queue N] [--deadline-ms N] \
         [--shards N] [--batch-window-ms N] [--workers N] [--grace-secs N] \
         [--fsync] [--breaker-threshold N] [--breaker-cooldown-ms N]\n\
         at least one of --tcp/--unix is required\n\
         --fsync: fsync every journal append (crash-durable, slower)\n\
         --breaker-threshold: consecutive failures before a config is \
         quarantined (0 disables)"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        tcp: None,
        unix: None,
        // The daemon defaults to a small nonzero gather window: 2 ms of
        // cold-miss latency buys merged sweeps under concurrent load
        // (simulations take tens of ms, so the window is noise).
        cfg: ServeConfig {
            batch_window_ms: 2,
            ..ServeConfig::default()
        },
        grace: Duration::from_secs(30),
    };
    let mut it = std::env::args().skip(1);
    let value = |it: &mut dyn Iterator<Item = String>, flag: &str| -> String {
        it.next().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            usage()
        })
    };
    let num = |it: &mut dyn Iterator<Item = String>, flag: &str| -> u64 {
        value(it, flag).parse().unwrap_or_else(|_| {
            eprintln!("{flag} needs a number");
            usage()
        })
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tcp" => args.tcp = Some(value(&mut it, "--tcp")),
            "--unix" => args.unix = Some(PathBuf::from(value(&mut it, "--unix"))),
            "--cache" => args.cfg.cache_dir = PathBuf::from(value(&mut it, "--cache")),
            "--mem-cap" => args.cfg.mem_cap = num(&mut it, "--mem-cap") as usize,
            "--max-running" => args.cfg.max_running = num(&mut it, "--max-running") as usize,
            "--max-queue" => args.cfg.max_queue = num(&mut it, "--max-queue") as usize,
            "--deadline-ms" => args.cfg.default_deadline_ms = Some(num(&mut it, "--deadline-ms")),
            "--shards" => args.cfg.shards = num(&mut it, "--shards") as usize,
            "--batch-window-ms" => args.cfg.batch_window_ms = num(&mut it, "--batch-window-ms"),
            "--workers" => args.cfg.workers = num(&mut it, "--workers") as usize,
            "--grace-secs" => args.grace = Duration::from_secs(num(&mut it, "--grace-secs")),
            "--fsync" => args.cfg.fsync = true,
            "--breaker-threshold" => {
                args.cfg.breaker_threshold = num(&mut it, "--breaker-threshold") as u32;
            }
            "--breaker-cooldown-ms" => {
                args.cfg.breaker_cooldown_ms = num(&mut it, "--breaker-cooldown-ms");
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    if args.tcp.is_none() && args.unix.is_none() {
        usage();
    }
    args
}

fn main() {
    let args = parse_args();
    if paxsim_core::faultinject::init_from_env() {
        eprintln!("paxsim-serve: PAXSIM_FAULTS plan active");
        // Injected faults are absorbed by design (worker retry, batch
        // poison recovery, degraded puts); keep their backtraces out of
        // the log so a *real* panic stands out.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .map(|s| s.contains("injected"))
                .or_else(|| {
                    info.payload()
                        .downcast_ref::<String>()
                        .map(|s| s.contains("injected"))
                })
                .unwrap_or(false);
            if !injected {
                prev(info);
            }
        }));
    }
    install_term_handler();
    let service = match Service::open(args.cfg.clone()) {
        Ok(s) => Arc::new(s),
        Err(e) => {
            eprintln!("paxsim-serve: cannot open cache: {e}");
            std::process::exit(1);
        }
    };
    let server = match Server::start(service.clone(), args.tcp.as_deref(), args.unix.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("paxsim-serve: cannot listen: {e}");
            std::process::exit(1);
        }
    };
    if let Some(addr) = server.tcp_addr() {
        println!("paxsim-serve: listening on tcp {addr}");
    }
    if let Some(path) = server.unix_path() {
        println!("paxsim-serve: listening on unix {}", path.display());
    }
    println!(
        "paxsim-serve: cache {} ({} on disk, {} shards{}), batch window {} ms, {} workers",
        args.cfg.cache_dir.display(),
        service.cache().disk_len(),
        service.cache().shard_count(),
        if service.cache().migrated() > 0 {
            format!(", {} migrated", service.cache().migrated())
        } else {
            String::new()
        },
        args.cfg.batch_window_ms,
        args.cfg.effective_workers(),
    );
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !TERM.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("paxsim-serve: term signal, draining…");
    let drained = server.shutdown(args.grace);
    eprintln!(
        "paxsim-serve: {} (hits {} misses {} computed {})",
        if drained {
            "drained cleanly"
        } else {
            "grace period expired"
        },
        service.cache().hits(),
        service.cache().misses(),
        service.computed(),
    );
    std::process::exit(if drained { 0 } else { 1 });
}
