//! The newline-delimited JSON wire protocol.
//!
//! One request per line, one reply per line; the connection stays open
//! for any number of request/reply rounds. Requests are JSON objects
//! dispatched on `"op"`:
//!
//! ```text
//! {"op":"simulate","kernel":"ep","config":"CMP"}
//! {"op":"simulate","kernel":"cg","config":"HT on -4-1","class":"T",
//!  "trials":3,"jitter":2000,"schedule":"static","deadline_ms":30000,
//!  "machine":{…full MachineConfig…}}
//! {"op":"simulate","kernel":"cg","config":"CMP","fidelity":"predicted"}
//! {"op":"stats"}
//! ```
//!
//! `fidelity` selects the answering tier: `exact` (default; cycle
//! engine, byte-identical to pre-fidelity daemons), `predicted`
//! (analytical model, microseconds, reply carries `fidelity` and
//! `error_bounds` extras), or `fast` (cached exact if warm, else
//! predicted).
//!
//! Unknown fields are rejected (a typo must not silently change the
//! request's identity); omitted optional fields take the [`StudySpec`]
//! defaults, so a request's content hash is the same whether defaults are
//! spelled out or omitted. Replies are `{"ok":true,…}` or
//! `{"ok":false,"error":"<category>","detail":"…"}` — categories are the
//! closed set in [`error_category`] plus the service-level `overloaded`,
//! `draining`, `shed`, and `quarantined`.

use paxsim_core::error::{StudyError, StudyResult};
use paxsim_core::hash::{ConfigHash, Fidelity, StudySpec};
use paxsim_core::journal::Record;
use paxsim_core::tune::{TuneAlgo, TuneRequest, TuneResult};
use paxsim_machine::config::MachineConfig;
use serde::{Serialize, Value};

/// Deepest object/array nesting a request line may use. The vendored
/// JSON parser recurses per level, so unbounded nesting is a
/// peer-controlled stack overflow; nothing in the protocol legitimately
/// nests deeper than a machine config (3 levels).
pub const MAX_NESTING_DEPTH: usize = 64;

/// Largest trial count a request may ask for: each trial is a full
/// simulation, so an absurd count is a peer-controlled compute bomb.
pub const MAX_TRIALS: u64 = 100_000;

/// A parsed client request.
#[derive(Debug, Clone)]
pub enum Request {
    /// Run (or serve from cache) one simulation point.
    Simulate {
        spec: Box<StudySpec>,
        /// Per-request watchdog deadline for a cache miss's computation.
        deadline_ms: Option<u64>,
        /// How the answer may be produced (`exact` is the wire default
        /// and keeps every pre-fidelity reply byte-identical).
        fidelity: Fidelity,
    },
    /// Run (or serve from cache) a budgeted configuration search.
    Tune {
        req: Box<TuneRequest>,
        /// Per-request deadline applied to each exact-engine evaluation.
        deadline_ms: Option<u64>,
    },
    /// Report daemon statistics.
    Stats,
    /// Scrape the observability metrics snapshot (Prometheus text plus
    /// structured JSON).
    Metrics,
    /// Report liveness/degradation state: drain status, per-shard journal
    /// health, circuit-breaker quarantine list, shed counters. Cheap
    /// enough for an orchestrator to poll every second.
    Health,
}

fn bad(field: &str, detail: impl Into<String>) -> StudyError {
    StudyError::BadSpec {
        field: field.to_string(),
        detail: detail.into(),
    }
}

fn str_field(v: &Value, key: &str) -> StudyResult<Option<String>> {
    match v.get(key) {
        None => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| bad(key, "must be a string")),
    }
}

fn u64_field(v: &Value, key: &str) -> StudyResult<Option<u64>> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(key, "must be a non-negative integer")),
    }
}

fn str_list_field(v: &Value, key: &str) -> StudyResult<Option<Vec<String>>> {
    match v.get(key) {
        None => Ok(None),
        Some(Value::Array(items)) => items
            .iter()
            .map(|item| {
                item.as_str()
                    .map(|s| s.to_string())
                    .ok_or_else(|| bad(key, "must be an array of strings"))
            })
            .collect::<StudyResult<Vec<String>>>()
            .map(Some),
        Some(_) => Err(bad(key, "must be an array of strings")),
    }
}

fn f64_field(v: &Value, key: &str) -> StudyResult<Option<f64>> {
    match v.get(key) {
        None => Ok(None),
        Some(n) => n
            .as_f64()
            .map(Some)
            .ok_or_else(|| bad(key, "must be a number")),
    }
}

/// Reject peer-controlled nesting beyond [`MAX_NESTING_DEPTH`] *before*
/// handing the line to the recursive JSON parser. String contents (and
/// escaped quotes inside them) are skipped, so brackets in string
/// literals don't count.
fn check_nesting_depth(line: &str) -> StudyResult<()> {
    let mut depth: usize = 0;
    let mut in_string = false;
    let mut escaped = false;
    for b in line.bytes() {
        if in_string {
            match (escaped, b) {
                (true, _) => escaped = false,
                (false, b'\\') => escaped = true,
                (false, b'"') => in_string = false,
                _ => {}
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' | b'[' => {
                depth += 1;
                if depth > MAX_NESTING_DEPTH {
                    return Err(bad(
                        "request",
                        format!("nesting deeper than {MAX_NESTING_DEPTH} levels"),
                    ));
                }
            }
            b'}' | b']' => depth = depth.saturating_sub(1),
            _ => {}
        }
    }
    Ok(())
}

/// Parse one request line.
///
/// # Errors
///
/// [`StudyError::BadSpec`] naming the malformed field; the server maps
/// this to a `bad-request` reply. Client input must never panic the
/// daemon.
pub fn parse_request(line: &str) -> StudyResult<Request> {
    check_nesting_depth(line)?;
    let v = serde_json::parse(line).map_err(|e| bad("request", format!("not JSON: {e}")))?;
    let obj = match &v {
        Value::Object(entries) => entries,
        _ => return Err(bad("request", "must be a JSON object")),
    };
    let op = str_field(&v, "op")?
        .ok_or_else(|| bad("op", "missing (simulate, tune, stats, metrics or health)"))?;
    match op.as_str() {
        "stats" => {
            for (k, _) in obj {
                if k != "op" {
                    return Err(bad(k, "unknown field for op=stats"));
                }
            }
            Ok(Request::Stats)
        }
        "metrics" => {
            for (k, _) in obj {
                if k != "op" {
                    return Err(bad(k, "unknown field for op=metrics"));
                }
            }
            Ok(Request::Metrics)
        }
        "health" => {
            for (k, _) in obj {
                if k != "op" {
                    return Err(bad(k, "unknown field for op=health"));
                }
            }
            Ok(Request::Health)
        }
        "simulate" => {
            for (k, _) in obj {
                match k.as_str() {
                    "op" | "kernel" | "config" | "class" | "trials" | "jitter" | "schedule"
                    | "machine" | "deadline_ms" | "fidelity" => {}
                    other => return Err(bad(other, "unknown field for op=simulate")),
                }
            }
            let kernel = str_field(&v, "kernel")?.ok_or_else(|| bad("kernel", "missing"))?;
            let config = str_field(&v, "config")?.ok_or_else(|| bad("config", "missing"))?;
            let mut spec = StudySpec::new(&kernel, &config);
            if let Some(class) = str_field(&v, "class")? {
                spec.class = class;
            }
            if let Some(trials) = u64_field(&v, "trials")? {
                if trials > MAX_TRIALS {
                    return Err(bad("trials", format!("must be <= {MAX_TRIALS}")));
                }
                spec.trials = trials as usize;
            }
            if let Some(jitter) = u64_field(&v, "jitter")? {
                spec.jitter = jitter;
            }
            if let Some(schedule) = str_field(&v, "schedule")? {
                spec.schedule = schedule;
            }
            if let Some(m) = v.get("machine") {
                spec.machine = serde_json::from_value::<MachineConfig>(m)
                    .map_err(|e| bad("machine", format!("not a full machine config: {e}")))?;
            }
            let deadline_ms = u64_field(&v, "deadline_ms")?;
            let fidelity = match str_field(&v, "fidelity")? {
                None => Fidelity::default(),
                Some(s) => Fidelity::parse(&s).ok_or_else(|| {
                    bad(
                        "fidelity",
                        format!("unknown fidelity `{s}` (exact, fast or predicted)"),
                    )
                })?,
            };
            Ok(Request::Simulate {
                spec: Box::new(spec),
                deadline_ms,
                fidelity,
            })
        }
        "tune" => {
            for (k, _) in obj {
                match k.as_str() {
                    "op" | "kernel" | "class" | "trials" | "jitter" | "configs" | "schedules"
                    | "budget" | "algo" | "fidelity" | "margin" | "machine" | "deadline_ms" => {}
                    other => return Err(bad(other, "unknown field for op=tune")),
                }
            }
            let kernel = str_field(&v, "kernel")?.ok_or_else(|| bad("kernel", "missing"))?;
            let mut req = TuneRequest::new(&kernel);
            if let Some(class) = str_field(&v, "class")? {
                req.class = class;
            }
            if let Some(trials) = u64_field(&v, "trials")? {
                if trials > MAX_TRIALS {
                    return Err(bad("trials", format!("must be <= {MAX_TRIALS}")));
                }
                req.trials = trials as usize;
            }
            if let Some(jitter) = u64_field(&v, "jitter")? {
                req.jitter = jitter;
            }
            if let Some(configs) = str_list_field(&v, "configs")? {
                req.configs = configs;
            }
            if let Some(schedules) = str_list_field(&v, "schedules")? {
                req.schedules = schedules;
            }
            if let Some(budget) = u64_field(&v, "budget")? {
                req.budget = budget as usize;
            }
            if let Some(algo) = str_field(&v, "algo")? {
                req.algo = TuneAlgo::parse(&algo).ok_or_else(|| {
                    bad(
                        "algo",
                        format!("unknown algo `{algo}` (halving or hillclimb)"),
                    )
                })?;
            }
            if let Some(s) = str_field(&v, "fidelity")? {
                req.fidelity = Fidelity::parse(&s).ok_or_else(|| {
                    bad(
                        "fidelity",
                        format!("unknown fidelity `{s}` (exact or predicted)"),
                    )
                })?;
            }
            if let Some(margin) = f64_field(&v, "margin")? {
                req.margin = margin;
            }
            if let Some(m) = v.get("machine") {
                req.machine = serde_json::from_value::<MachineConfig>(m)
                    .map_err(|e| bad("machine", format!("not a full machine config: {e}")))?;
            }
            let deadline_ms = u64_field(&v, "deadline_ms")?;
            Ok(Request::Tune {
                req: Box::new(req),
                deadline_ms,
            })
        }
        other => Err(bad("op", format!("unknown op `{other}`"))),
    }
}

/// Render a successful simulation reply. Both the cold-miss and the
/// cache-hit path call this with the *journal record* as the payload, so
/// the two replies are byte-identical (the journal's JSON round-trip is
/// bit-exact for every f64).
pub fn render_result(hash: ConfigHash, spec: &StudySpec, record: &Record) -> String {
    let v = Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("hash".to_string(), Value::String(hash.to_string())),
        ("spec".to_string(), spec.to_value()),
        ("result".to_string(), record.to_value()),
    ]);
    serde_json::to_string(&v).expect("value tree renders infallibly")
}

/// Render a predicted-tier reply: [`render_result`]'s payload plus the
/// fields only this tier carries — the serving `fidelity` and the
/// declared `error_bounds`. The extras are *appended* after the standard
/// fields, so default-fidelity replies (which never call this) stay
/// byte-identical to pre-fidelity daemons and tolerant clients simply see
/// extra keys.
pub fn render_result_predicted(
    hash: ConfigHash,
    spec: &StudySpec,
    record: &Record,
    fidelity: Fidelity,
    bounds: &paxsim_predict::ErrorBounds,
) -> String {
    let v = Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("hash".to_string(), Value::String(hash.to_string())),
        ("spec".to_string(), spec.to_value()),
        ("result".to_string(), record.to_value()),
        (
            "fidelity".to_string(),
            Value::String(fidelity.wire().to_string()),
        ),
        (
            "error_bounds".to_string(),
            Value::Object(vec![
                ("wall".to_string(), Value::Float(bounds.wall)),
                ("cpi".to_string(), Value::Float(bounds.cpi)),
                ("miss_rate".to_string(), Value::Float(bounds.miss_rate)),
                ("stall".to_string(), Value::Float(bounds.stall)),
            ]),
        ),
    ]);
    serde_json::to_string(&v).expect("value tree renders infallibly")
}

/// Render a tune reply: the request identity, the normalized request
/// (so a client sees exactly which grid was searched after alias
/// normalization and default expansion), and the search verdict with
/// full round-by-round provenance. Cold computes and cache hits both
/// render from the same [`TuneResult`], so replies are byte-identical.
pub fn render_tune(hash: ConfigHash, req: &TuneRequest, result: &TuneResult) -> String {
    let v = Value::Object(vec![
        ("ok".to_string(), Value::Bool(true)),
        ("hash".to_string(), Value::String(hash.to_string())),
        ("request".to_string(), req.to_value()),
        ("tune".to_string(), result.to_value()),
    ]);
    serde_json::to_string(&v).expect("value tree renders infallibly")
}

/// Render an error reply.
pub fn render_error(category: &str, detail: &str) -> String {
    let v = Value::Object(vec![
        ("ok".to_string(), Value::Bool(false)),
        ("error".to_string(), Value::String(category.to_string())),
        ("detail".to_string(), Value::String(detail.to_string())),
    ]);
    serde_json::to_string(&v).expect("value tree renders infallibly")
}

/// The wire category for a computation-path error. Closed set:
/// `bad-request`, `deadline`, `panic`, `build-failed`, `internal` (plus
/// the service-level `overloaded`, `draining`, `shed`, and
/// `quarantined`).
pub fn error_category(e: &StudyError) -> &'static str {
    match e {
        StudyError::BadSpec { .. } => "bad-request",
        StudyError::CellTimedOut { .. } => "deadline",
        StudyError::CellPanicked { .. } => "panic",
        StudyError::BuildFailed { .. } => "build-failed",
        StudyError::JournalIo { .. }
        | StudyError::JournalCorrupt { .. }
        | StudyError::Serialize { .. } => "internal",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_simulate_takes_defaults() {
        let r = parse_request(r#"{"op":"simulate","kernel":"ep","config":"CMP"}"#).unwrap();
        let Request::Simulate {
            spec,
            deadline_ms,
            fidelity,
        } = r
        else {
            panic!("wrong op");
        };
        assert_eq!(*spec, StudySpec::new("ep", "CMP"));
        assert_eq!(deadline_ms, None);
        assert_eq!(fidelity, Fidelity::Exact, "fidelity defaults to exact");
        // Identity: defaults omitted == defaults spelled out.
        let spelled = parse_request(
            r#"{"op":"simulate","kernel":"ep","config":"CMP","class":"T",
                "trials":1,"jitter":0,"schedule":"static"}"#,
        )
        .unwrap();
        let Request::Simulate { spec: s2, .. } = spelled else {
            panic!("wrong op");
        };
        assert_eq!(spec.content_hash(), s2.content_hash());
    }

    #[test]
    fn metrics_op_parses() {
        assert!(matches!(
            parse_request(r#"{"op":"metrics"}"#).unwrap(),
            Request::Metrics
        ));
    }

    #[test]
    fn health_op_parses_and_rejects_extras() {
        assert!(matches!(
            parse_request(r#"{"op":"health"}"#).unwrap(),
            Request::Health
        ));
        let err = parse_request(r#"{"op":"health","verbose":true}"#).unwrap_err();
        assert!(matches!(err, StudyError::BadSpec { field, .. } if field == "verbose"));
    }

    #[test]
    fn full_simulate_roundtrips_every_field() {
        let r = parse_request(
            r#"{"op":"simulate","kernel":"cg","config":"CMT","class":"S",
                "trials":4,"jitter":1500,"schedule":"dynamic,2","deadline_ms":9000,
                "fidelity":"predicted"}"#,
        )
        .unwrap();
        let Request::Simulate {
            spec,
            deadline_ms,
            fidelity,
        } = r
        else {
            panic!("wrong op");
        };
        assert_eq!(spec.kernel, "cg");
        assert_eq!(spec.class, "S");
        assert_eq!(spec.trials, 4);
        assert_eq!(spec.jitter, 1500);
        assert_eq!(spec.schedule, "dynamic,2");
        assert_eq!(deadline_ms, Some(9000));
        assert_eq!(fidelity, Fidelity::Predicted);
    }

    #[test]
    fn fidelity_parses_all_tiers_and_rejects_unknown() {
        for (s, want) in [
            ("exact", Fidelity::Exact),
            ("fast", Fidelity::Fast),
            ("predicted", Fidelity::Predicted),
        ] {
            let line =
                format!(r#"{{"op":"simulate","kernel":"ep","config":"CMP","fidelity":"{s}"}}"#);
            let Request::Simulate { fidelity, .. } = parse_request(&line).unwrap() else {
                panic!("wrong op");
            };
            assert_eq!(fidelity, want);
        }
        let err =
            parse_request(r#"{"op":"simulate","kernel":"ep","config":"CMP","fidelity":"turbo"}"#)
                .unwrap_err();
        assert!(matches!(err, StudyError::BadSpec { field, .. } if field == "fidelity"));
    }

    #[test]
    fn machine_override_changes_identity() {
        let mut m = MachineConfig::paxville_smp();
        m.l2_lat += 5;
        let line = format!(
            r#"{{"op":"simulate","kernel":"ep","config":"CMP","machine":{}}}"#,
            serde_json::to_string(&m).unwrap()
        );
        let Request::Simulate { spec, .. } = parse_request(&line).unwrap() else {
            panic!("wrong op");
        };
        assert_eq!(spec.machine, m);
        assert_ne!(
            spec.content_hash(),
            StudySpec::new("ep", "CMP").content_hash()
        );
    }

    #[test]
    fn malformed_requests_name_the_field() {
        let field = |line: &str| match parse_request(line).unwrap_err() {
            StudyError::BadSpec { field, .. } => field,
            e => panic!("unexpected error {e}"),
        };
        assert_eq!(field("not json"), "request");
        assert_eq!(field("[1,2]"), "request");
        assert_eq!(field(r#"{"kernel":"ep"}"#), "op");
        assert_eq!(field(r#"{"op":"fly"}"#), "op");
        assert_eq!(field(r#"{"op":"simulate","config":"CMP"}"#), "kernel");
        assert_eq!(field(r#"{"op":"simulate","kernel":"ep"}"#), "config");
        assert_eq!(
            field(r#"{"op":"simulate","kernel":"ep","config":"CMP","trials":"three"}"#),
            "trials"
        );
        assert_eq!(
            field(r#"{"op":"simulate","kernel":"ep","config":"CMP","kernell":"x"}"#),
            "kernell"
        );
        assert_eq!(field(r#"{"op":"stats","extra":1}"#), "extra");
        assert_eq!(field(r#"{"op":"metrics","extra":1}"#), "extra");
        assert_eq!(
            field(r#"{"op":"simulate","kernel":"ep","config":"CMP","machine":{"chips":2}}"#),
            "machine"
        );
    }

    #[test]
    fn minimal_tune_takes_defaults() {
        let r = parse_request(r#"{"op":"tune","kernel":"ep"}"#).unwrap();
        let Request::Tune { req, deadline_ms } = r else {
            panic!("wrong op");
        };
        assert_eq!(*req, TuneRequest::new("ep"));
        assert_eq!(deadline_ms, None);
    }

    #[test]
    fn full_tune_roundtrips_every_field() {
        let r = parse_request(
            r#"{"op":"tune","kernel":"cg","class":"S","trials":2,"jitter":500,
                "configs":["CMP","CMT"],"schedules":["static","dynamic,2"],
                "budget":16,"algo":"hillclimb","fidelity":"predicted",
                "margin":0.1,"deadline_ms":9000}"#,
        )
        .unwrap();
        let Request::Tune { req, deadline_ms } = r else {
            panic!("wrong op");
        };
        assert_eq!(req.kernel, "cg");
        assert_eq!(req.class, "S");
        assert_eq!(req.trials, 2);
        assert_eq!(req.jitter, 500);
        assert_eq!(req.configs, vec!["CMP", "CMT"]);
        assert_eq!(req.schedules, vec!["static", "dynamic,2"]);
        assert_eq!(req.budget, 16);
        assert_eq!(req.algo, TuneAlgo::HillClimb);
        assert_eq!(req.fidelity, Fidelity::Predicted);
        assert_eq!(req.margin, 0.1);
        assert_eq!(deadline_ms, Some(9000));
    }

    #[test]
    fn malformed_tune_names_the_field() {
        let field = |line: &str| match parse_request(line).unwrap_err() {
            StudyError::BadSpec { field, .. } => field,
            e => panic!("unexpected error {e}"),
        };
        assert_eq!(field(r#"{"op":"tune"}"#), "kernel");
        assert_eq!(field(r#"{"op":"tune","kernel":"ep","budge":4}"#), "budge");
        assert_eq!(
            field(r#"{"op":"tune","kernel":"ep","configs":"CMP"}"#),
            "configs"
        );
        assert_eq!(
            field(r#"{"op":"tune","kernel":"ep","configs":[1,2]}"#),
            "configs"
        );
        assert_eq!(
            field(r#"{"op":"tune","kernel":"ep","algo":"anneal"}"#),
            "algo"
        );
        assert_eq!(
            field(r#"{"op":"tune","kernel":"ep","margin":"wide"}"#),
            "margin"
        );
        assert_eq!(
            field(r#"{"op":"tune","kernel":"ep","fidelity":"turbo"}"#),
            "fidelity"
        );
    }

    #[test]
    fn absurd_nesting_is_rejected_not_recursed() {
        // Regression: the vendored JSON parser recurses per nesting
        // level, so a deep-bracket line was a peer-controlled stack
        // overflow. The depth guard must reject it as bad-request.
        let deep = format!("{}1{}", "[".repeat(100_000), "]".repeat(100_000));
        let err = parse_request(&deep).unwrap_err();
        assert!(matches!(err, StudyError::BadSpec { field, .. } if field == "request"));
        // Brackets inside string literals don't count toward depth:
        // this parses fine (an unknown kernel is the service's problem,
        // not the parser's).
        let literal = format!(
            r#"{{"op":"simulate","kernel":"{}","config":"CMP"}}"#,
            "[".repeat(200)
        );
        assert!(parse_request(&literal).is_ok());
        // ... including escaped quotes inside strings.
        let escaped = r#"{"op":"simulate","kernel":"a\"[[[","config":"CMP"}"#;
        assert!(parse_request(escaped).is_ok());
    }

    #[test]
    fn absurd_trials_are_rejected() {
        // Regression: each trial is a full simulation; a peer asking for
        // u64::MAX trials was a compute bomb the gate couldn't shed.
        for line in [
            r#"{"op":"simulate","kernel":"ep","config":"CMP","trials":18446744073709551615}"#,
            r#"{"op":"simulate","kernel":"ep","config":"CMP","trials":100001}"#,
            r#"{"op":"tune","kernel":"ep","trials":100001}"#,
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                matches!(err, StudyError::BadSpec { ref field, .. } if field == "trials"),
                "{line} -> {err}"
            );
        }
        // The cap itself is fine.
        assert!(
            parse_request(r#"{"op":"simulate","kernel":"ep","config":"CMP","trials":100000}"#)
                .is_ok()
        );
    }

    #[test]
    fn tune_reply_is_wellformed_and_deterministic() {
        let req = TuneRequest::new("ep");
        let result = TuneResult {
            best_config: "HT off -2-2".into(),
            best_schedule: "static".into(),
            speedup: 1.87,
            fidelity: Fidelity::Exact,
            algo: TuneAlgo::Halving,
            grid: 35,
            evaluated: 20,
            budget: 64,
            budget_spent: 20,
            budget_exhausted: false,
            rounds: vec![],
        };
        let a = render_tune(ConfigHash(0xbeef), &req, &result);
        let b = render_tune(ConfigHash(0xbeef), &req, &result);
        assert_eq!(a, b);
        let v = serde_json::parse(&a).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["tune"]["best_config"].as_str(), Some("HT off -2-2"));
        assert_eq!(v["tune"]["budget_spent"].as_u64(), Some(20));
        assert!(!a.contains('\n'), "one line");
    }

    #[test]
    fn replies_are_wellformed_json() {
        let rec = Record {
            key: "serve|abc".into(),
            sides: vec![],
        };
        let spec = StudySpec::new("ep", "CMP");
        let ok = render_result(ConfigHash(0xfeed), &spec, &rec);
        let v = serde_json::parse(&ok).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["hash"].as_str(), Some("000000000000feed"));
        let err = render_error("overloaded", "queue full");
        let v = serde_json::parse(&err).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(false));
        assert_eq!(v["error"].as_str(), Some("overloaded"));
        assert!(!ok.contains('\n') && !err.contains('\n'), "one line each");
    }

    #[test]
    fn predicted_reply_extends_the_exact_shape() {
        let rec = Record {
            key: "serve|abc".into(),
            sides: vec![],
        };
        let spec = StudySpec::new("ep", "CMP");
        let exact = render_result(ConfigHash(0xfeed), &spec, &rec);
        let pred = render_result_predicted(
            ConfigHash(0xfeed),
            &spec,
            &rec,
            Fidelity::Predicted,
            &paxsim_predict::ErrorBounds::default(),
        );
        let v = serde_json::parse(&pred).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert_eq!(v["fidelity"].as_str(), Some("predicted"));
        assert!(v["error_bounds"]["wall"].as_f64().unwrap() > 0.0);
        assert!(!pred.contains('\n'), "one line");
        // The predicted reply is the exact reply plus trailing fields:
        // a tolerant client that ignores unknown keys sees the same
        // record either way.
        let prefix = exact.trim_end_matches('}');
        assert!(pred.starts_with(prefix), "{pred} must extend {exact}");
    }

    #[test]
    fn categories_cover_every_error() {
        assert_eq!(
            error_category(&StudyError::BadSpec {
                field: "x".into(),
                detail: String::new()
            }),
            "bad-request"
        );
        assert_eq!(
            error_category(&StudyError::CellTimedOut {
                index: 0,
                elapsed_ms: 2,
                deadline_ms: 1
            }),
            "deadline"
        );
        assert_eq!(
            error_category(&StudyError::CellPanicked {
                index: 0,
                payload: String::new()
            }),
            "panic"
        );
    }
}
