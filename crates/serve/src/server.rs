//! Socket front end: TCP and Unix-domain listeners, connection threads,
//! and the graceful-drain state machine.
//!
//! ```text
//! Running ──drain()──▶ Draining ──(in-flight = 0)──▶ Stopped
//! ```
//!
//! * **Running** — both listeners accept; every request line is served.
//! * **Draining** — listeners stop accepting (new connects are refused
//!   by the closed socket), established connections keep their replies
//!   coming but cache *misses* answer `{"error":"draining"}`; in-flight
//!   computations run to completion and land in the cache.
//! * **Stopped** — no request is mid-handle and no computation is
//!   admitted; [`Server::shutdown`] returns and the process can exit
//!   (closing any still-open idle connections). The on-disk cache needs
//!   no final flush — the journal flushes every append.
//!
//! Accept loops poll non-blocking listeners so the drain flag is honored
//! within one poll interval without any signal-handling dependency in
//! the library layer (the daemon binary translates `SIGTERM` into
//! [`Server::drain`]).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::service::Service;

const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A running daemon front end.
pub struct Server {
    service: Arc<Service>,
    drain: Arc<AtomicBool>,
    /// Request lines currently being handled (not idle connections).
    active: Arc<AtomicUsize>,
    accepters: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Bind the requested listeners and start accepting. At least one of
    /// `tcp` (an address like `127.0.0.1:7077`; port 0 picks a free one)
    /// or `unix` (a socket path, replaced if it already exists) must be
    /// given.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures, or neither listener requested.
    pub fn start(
        service: Arc<Service>,
        tcp: Option<&str>,
        unix: Option<&Path>,
    ) -> std::io::Result<Server> {
        if tcp.is_none() && unix.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "need a TCP address or a Unix socket path to listen on",
            ));
        }
        let drain = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let mut accepters = Vec::new();
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            let handler = handler_for::<TcpStream>(&service, &drain, &active);
            let drain = drain.clone();
            accepters.push(std::thread::spawn(move || {
                accept_loop(&drain, || listener.accept().map(|(s, _)| s), handler);
            }));
        }
        let mut unix_path = None;
        if let Some(path) = unix {
            // A stale socket file from a previous run refuses the bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.to_path_buf());
            let handler = handler_for::<UnixStream>(&service, &drain, &active);
            let drain = drain.clone();
            accepters.push(std::thread::spawn(move || {
                accept_loop(&drain, || listener.accept().map(|(s, _)| s), handler);
            }));
        }
        Ok(Server {
            service,
            drain,
            active,
            accepters,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address (with the actual port when 0 was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Enter the Draining state: stop accepting, refuse new computations,
    /// let in-flight work finish.
    pub fn drain(&self) {
        self.service.set_draining();
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Request lines being handled right now.
    pub fn active_requests(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Drain and wait (up to `grace`) for in-flight request lines and
    /// admitted computations to finish, then reap the accept threads and
    /// remove the Unix socket file. Returns `true` when everything
    /// drained inside the grace period.
    pub fn shutdown(self, grace: Duration) -> bool {
        self.drain();
        let deadline = Instant::now() + grace;
        let drained = loop {
            if self.active.load(Ordering::SeqCst) == 0 && self.service.busy() == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        for h in self.accepters {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        drained
    }
}

/// A `'static` per-connection handler owning its shared-state handles,
/// cloneable once per accepted connection.
fn handler_for<S: LineStream + TryCloneStream + Send + 'static>(
    service: &Arc<Service>,
    _drain: &Arc<AtomicBool>,
    active: &Arc<AtomicUsize>,
) -> impl Fn(S) + Send + Clone + 'static {
    let (service, active) = (service.clone(), active.clone());
    move |stream: S| serve_connection(stream, &service, &active)
}

/// Poll `accept` until the drain flag rises, spawning a handler thread
/// per connection.
fn accept_loop<S, A, H>(drain: &AtomicBool, accept: A, handle: H)
where
    S: Send + 'static,
    A: Fn() -> std::io::Result<S>,
    H: Fn(S) + Send + Clone + 'static,
{
    while !drain.load(Ordering::SeqCst) {
        match accept() {
            Ok(stream) => {
                let handle = handle.clone();
                std::thread::spawn(move || handle(stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => std::thread::sleep(ACCEPT_POLL),
        }
    }
}

trait LineStream: std::io::Read + Write {
    /// Bounded blocking so a silent client cannot pin the reader forever
    /// once the daemon is told to exit.
    fn set_timeout(&self, t: Option<Duration>) -> std::io::Result<()>;
}

impl LineStream for TcpStream {
    fn set_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(t)
    }
}

impl LineStream for UnixStream {
    fn set_timeout(&self, t: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(t)
    }
}

/// One connection: read request lines, write reply lines, until EOF (or
/// process exit — draining never force-closes an established
/// connection, so a client that sent a request before the drain always
/// gets its reply).
fn serve_connection<S: LineStream + TryCloneStream>(
    stream: S,
    service: &Service,
    active: &AtomicUsize,
) {
    let _ = stream.set_timeout(Some(Duration::from_millis(200)));
    let Ok(read_half) = stream.try_clone_stream() else {
        return;
    };
    let mut writer = stream;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF: client closed
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    active.fetch_add(1, Ordering::SeqCst);
                    let reply = service.handle_line(trimmed);
                    let ok = writer
                        .write_all(reply.as_bytes())
                        .and_then(|()| writer.write_all(b"\n"))
                        .and_then(|()| writer.flush());
                    active.fetch_sub(1, Ordering::SeqCst);
                    if ok.is_err() {
                        return;
                    }
                }
                line.clear();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                // Idle poll; `line` may hold a partial request the
                // client is still typing — keep it and try again.
            }
            Err(_) => return,
        }
    }
}

trait TryCloneStream: Sized {
    fn try_clone_stream(&self) -> std::io::Result<Self>;
}

impl TryCloneStream for TcpStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
}

impl TryCloneStream for UnixStream {
    fn try_clone_stream(&self) -> std::io::Result<Self> {
        self.try_clone()
    }
}
