//! Socket front end: a non-blocking reactor per listener feeding a fixed
//! pool of compute workers.
//!
//! The PR-4 server spawned one detached thread per connection — simple,
//! but the thread count tracked the *connection* count (10k idle
//! dashboards = 10k blocked threads), and drain could only infer handler
//! completion from a request counter because the handles were thrown
//! away. The front end is now a **reactor**: each listener gets one
//! thread that owns every connection accepted from it, polling
//! non-blocking sockets (std-only: `set_nonblocking` + `WouldBlock`) with
//! per-connection read buffers, [`FrameBuffer`](crate::frame) reassembly,
//! and per-connection write queues. Complete frames are dispatched to a
//! fixed **worker pool** (sized by [`ServeConfig::effective_workers`]
//! (crate::service::ServeConfig) — deliberately larger than the admission
//! gate so cache hits keep flowing while every gate slot is occupied by a
//! blocked batch leader); workers run
//! [`Service::handle_line`](crate::service::Service) and push the reply
//! to a completion queue that wakes the owning reactor.
//!
//! **Inline hit fast path.** Before dispatching a frame, the reactor
//! tries [`Service::try_hit`](crate::service::Service::try_hit): a
//! `simulate` request whose result is already cached is answered on the
//! reactor thread itself, skipping the pool round trip (two context
//! switches per request — about half the wire cost of a hit on a busy
//! single-core host). The trade is deliberate: hit service time (~tens
//! of µs) briefly occupies the I/O thread, capping per-reactor hit
//! throughput at one core's worth — but the reactor already serializes
//! all of its connections' socket I/O, so the ceiling was one core
//! regardless, and the saved switches dominate. Misses, `stats`, and
//! malformed frames take the pool as before.
//!
//! Thread count is now `reactors (≤2) + workers (fixed)`, independent of
//! connections — and every one of those threads is tracked and joined at
//! shutdown, making "all handlers finished" a structural guarantee
//! instead of an inference.
//!
//! **Ordering.** A connection may pipeline many requests; replies must
//! come back in request order even though workers finish out of order.
//! Each frame gets a per-connection sequence number; completed replies
//! park in a `BTreeMap` until every earlier sequence has been released to
//! the write queue. (Pipelined requests still *dispatch* immediately —
//! that concurrency is what feeds the batcher.)
//!
//! **Stale completions.** Connection slots are reused, so a completion
//! for a connection that died mid-compute could otherwise be delivered to
//! an unrelated client. Every slot carries a generation counter; a
//! completion whose `(slot, generation)` no longer matches is discarded.
//!
//! ```text
//! Running ──drain()──▶ Draining ──(in-flight = 0, buffers empty)──▶ Stopped
//! ```
//!
//! * **Running** — listeners accept; every request line is served.
//! * **Draining** — listeners are *closed* (new connects are refused at
//!   the socket, not silently parked in a backlog); established
//!   connections keep their replies coming but cache misses answer
//!   `{"error":"draining"}`; dispatched work runs to completion and its
//!   replies are flushed.
//! * **Stopped** — [`Server::shutdown`] has observed zero in-flight jobs,
//!   zero admitted computations and zero buffered reply bytes, then
//!   joined every reactor and worker thread.

use std::collections::{BTreeMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::frame::FrameBuffer;
use crate::protocol;
use crate::service::Service;

/// Reactor park bounds. A completion push wakes the park immediately,
/// but *new request bytes* on a socket cannot — only the next poll sees
/// them — so the park length is adaptive: it starts at `POLL_PARK_MIN`
/// after the first idle pass (an active connection's next request is
/// usually microseconds away) and doubles each further idle pass up to
/// `POLL_PARK_MAX` (a genuinely idle reactor costs a few wakeups per
/// millisecond, not a spin).
const POLL_PARK_MIN: Duration = Duration::from_micros(10);
const POLL_PARK_MAX: Duration = Duration::from_micros(500);

/// Reactor gauges are refreshed at most this often.
const GAUGE_PERIOD: Duration = Duration::from_millis(50);

/// Read-chunk size per `read` syscall.
const READ_CHUNK: usize = 64 * 1024;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Worker pool and completion queue.
// ---------------------------------------------------------------------------

/// `(slot, generation)` connection identity; generation protects reused
/// slots from stale completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ConnId {
    slot: usize,
    generation: u64,
}

struct Job {
    conn: ConnId,
    seq: u64,
    line: String,
    /// The completion queue of the reactor that owns the connection.
    completions: Arc<Completions>,
}

struct Completion {
    conn: ConnId,
    seq: u64,
    reply: String,
}

/// Per-reactor completion queue; doubles as the reactor's park/wake
/// primitive.
struct Completions {
    queue: Mutex<Vec<Completion>>,
    cv: Condvar,
}

impl Completions {
    fn new() -> Arc<Completions> {
        Arc::new(Completions {
            queue: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        })
    }

    fn push(&self, c: Completion) {
        lock(&self.queue).push(c);
        self.cv.notify_one();
    }

    /// Take everything queued; if empty, park up to `timeout` first.
    fn drain(&self, timeout: Duration) -> Vec<Completion> {
        let mut q = lock(&self.queue);
        if q.is_empty() {
            let (guard, _) = self
                .cv
                .wait_timeout(q, timeout)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
        std::mem::take(&mut *q)
    }
}

/// The fixed compute-worker pool. Jobs are request lines; the pool is
/// shared by every reactor.
struct WorkerPool {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
}

impl WorkerPool {
    fn new() -> Arc<WorkerPool> {
        Arc::new(WorkerPool {
            jobs: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        })
    }

    fn submit(&self, job: Job) {
        lock(&self.jobs).push_back(job);
        self.cv.notify_one();
    }

    fn depth(&self) -> usize {
        lock(&self.jobs).len()
    }

    /// Stop the pool: discard queued jobs (only non-empty when a drain
    /// grace period expired) and wake every worker to exit.
    fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        lock(&self.jobs).clear();
        self.cv.notify_all();
    }

    fn worker_loop(&self, service: &Service, active: &AtomicUsize) {
        loop {
            let job = {
                let mut jobs = lock(&self.jobs);
                loop {
                    if self.stop.load(Ordering::SeqCst) {
                        return;
                    }
                    if let Some(job) = jobs.pop_front() {
                        break job;
                    }
                    jobs = self.cv.wait(jobs).unwrap_or_else(|e| e.into_inner());
                }
            };
            // The worker is the last line of panic isolation: a panic
            // escaping `handle_line` (or injected by `chaos::worker_job`)
            // must not kill the thread — that would strand the job's
            // reply, leak the `active` count, and hang drain forever.
            // One retry (panics here are transient by construction: the
            // compute path below already did its own retries), then a
            // typed reply.
            let reply = match run_job(service, &job.line) {
                Ok(r) => r,
                Err(_) => match run_job(service, &job.line) {
                    Ok(r) => r,
                    Err(payload) => protocol::render_error(
                        "panic",
                        &format!("worker panicked twice handling this request: {payload}"),
                    ),
                },
            };
            // Push before decrementing `active`, so `active == 0` implies
            // every finished reply is already visible to its reactor.
            let (conn, seq, completions) = (job.conn, job.seq, job.completions);
            completions.push(Completion { conn, seq, reply });
            active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Run one request line inside the worker's `catch_unwind` boundary.
/// `chaos::worker_job` fires injected worker panics here, so the
/// boundary (and its retry) is exercised deterministically in tests.
fn run_job(service: &Service, line: &str) -> Result<String, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        crate::chaos::worker_job();
        service.handle_line(line)
    }))
    .map_err(|p| {
        p.downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| p.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string())
    })
}

// ---------------------------------------------------------------------------
// Non-blocking listener/stream abstraction over TCP and Unix sockets.
// ---------------------------------------------------------------------------

trait NbListener: Send + 'static {
    type Stream: Read + Write + Send + 'static;
    fn accept_nb(&self) -> std::io::Result<Self::Stream>;
}

impl NbListener for TcpListener {
    type Stream = TcpStream;
    fn accept_nb(&self) -> std::io::Result<TcpStream> {
        let (s, _) = self.accept()?;
        s.set_nonblocking(true)?;
        // Reply lines are written as soon as they are released; batching
        // to the wire is done by our own write queue, not Nagle.
        let _ = s.set_nodelay(true);
        Ok(s)
    }
}

impl NbListener for UnixListener {
    type Stream = UnixStream;
    fn accept_nb(&self) -> std::io::Result<UnixStream> {
        let (s, _) = self.accept()?;
        s.set_nonblocking(true)?;
        Ok(s)
    }
}

fn would_block(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::Interrupted
    )
}

// ---------------------------------------------------------------------------
// Per-connection state.
// ---------------------------------------------------------------------------

struct Conn<S> {
    stream: S,
    generation: u64,
    frames: FrameBuffer,
    /// Bytes queued to the client, drained as the socket accepts them.
    out: VecDeque<u8>,
    /// Next sequence number to assign to an incoming frame.
    next_seq: u64,
    /// Next sequence number to release to `out` (FIFO reply order).
    next_release: u64,
    /// Out-of-order completions parked until their turn.
    ready: BTreeMap<u64, String>,
    /// Frames dispatched to the pool, not yet completed.
    pending_jobs: usize,
    /// Client closed its half (or erred); close once everything owed has
    /// been written.
    closing: bool,
    /// Socket write failed; drop without flushing.
    dead: bool,
}

impl<S> Conn<S> {
    /// Replies owed or buffered — the connection cannot be dropped (and
    /// the server cannot claim "drained") while this is nonzero.
    fn unsettled(&self) -> usize {
        self.pending_jobs + self.ready.len() + usize::from(!self.out.is_empty())
    }

    fn release_ready(&mut self) {
        while let Some(reply) = self.ready.remove(&self.next_release) {
            self.out.extend(reply.as_bytes());
            self.out.push_back(b'\n');
            self.next_release += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// The server.
// ---------------------------------------------------------------------------

/// A running daemon front end.
pub struct Server {
    service: Arc<Service>,
    drain: Arc<AtomicBool>,
    stop: Arc<AtomicBool>,
    /// Request lines dispatched to the pool and not yet completed.
    active: Arc<AtomicUsize>,
    /// Per-reactor count of connections still owed bytes (pending jobs,
    /// parked replies, or unflushed output).
    unsettled: Vec<Arc<AtomicUsize>>,
    pool: Arc<WorkerPool>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    tcp_addr: Option<SocketAddr>,
    unix_path: Option<PathBuf>,
}

impl Server {
    /// Bind the requested listeners and start the reactor(s) and worker
    /// pool. At least one of `tcp` (an address like `127.0.0.1:7077`;
    /// port 0 picks a free one) or `unix` (a socket path, replaced if it
    /// already exists) must be given.
    ///
    /// # Errors
    ///
    /// Socket bind/configuration failures, or neither listener requested.
    pub fn start(
        service: Arc<Service>,
        tcp: Option<&str>,
        unix: Option<&Path>,
    ) -> std::io::Result<Server> {
        if tcp.is_none() && unix.is_none() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "need a TCP address or a Unix socket path to listen on",
            ));
        }
        let drain = Arc::new(AtomicBool::new(false));
        let stop = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let pool = WorkerPool::new();
        let mut reactors = Vec::new();
        let mut unsettled = Vec::new();
        let mut spawn_reactor = |listener: Box<dyn FnOnce() -> ReactorKind + Send>| {
            let counters = Arc::new(AtomicUsize::new(0));
            unsettled.push(counters.clone());
            let (drain, stop, active, pool, service) = (
                drain.clone(),
                stop.clone(),
                active.clone(),
                pool.clone(),
                service.clone(),
            );
            reactors.push(std::thread::spawn(move || match listener() {
                ReactorKind::Tcp(l) => {
                    reactor_loop(l, &service, &drain, &stop, &active, &counters, &pool)
                }
                ReactorKind::Unix(l) => {
                    reactor_loop(l, &service, &drain, &stop, &active, &counters, &pool)
                }
            }));
        };
        let mut tcp_addr = None;
        if let Some(addr) = tcp {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            tcp_addr = Some(listener.local_addr()?);
            spawn_reactor(Box::new(move || ReactorKind::Tcp(listener)));
        }
        let mut unix_path = None;
        if let Some(path) = unix {
            // A stale socket file from a previous run refuses the bind.
            let _ = std::fs::remove_file(path);
            let listener = UnixListener::bind(path)?;
            listener.set_nonblocking(true)?;
            unix_path = Some(path.to_path_buf());
            spawn_reactor(Box::new(move || ReactorKind::Unix(listener)));
        }
        let workers = (0..service.config().effective_workers())
            .map(|_| {
                let (pool, service, active) = (pool.clone(), service.clone(), active.clone());
                std::thread::spawn(move || pool.worker_loop(&service, &active))
            })
            .collect();
        Ok(Server {
            service,
            drain,
            stop,
            active,
            unsettled,
            pool,
            reactors,
            workers,
            tcp_addr,
            unix_path,
        })
    }

    /// The bound TCP address (with the actual port when 0 was requested).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// The bound Unix socket path.
    pub fn unix_path(&self) -> Option<&Path> {
        self.unix_path.as_deref()
    }

    /// Enter the Draining state: close the listeners (new connects are
    /// refused), refuse new computations, let dispatched work finish.
    pub fn drain(&self) {
        self.service.set_draining();
        self.drain.store(true, Ordering::SeqCst);
    }

    /// Request lines dispatched and not yet completed.
    pub fn active_requests(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Connections still owed work or bytes, across all reactors.
    fn unsettled_connections(&self) -> usize {
        self.unsettled
            .iter()
            .map(|u| u.load(Ordering::SeqCst))
            .sum()
    }

    /// Drain and wait (up to `grace`) for every dispatched request, every
    /// admitted computation, and every buffered reply byte to clear, then
    /// stop and **join** every reactor and worker thread and remove the
    /// Unix socket file. Returns `true` when everything drained inside
    /// the grace period — at which point each in-flight client has had
    /// its reply flushed to the socket, proven by joined handlers rather
    /// than inferred from counters.
    pub fn shutdown(self, grace: Duration) -> bool {
        self.drain();
        let deadline = Instant::now() + grace;
        let drained = loop {
            if self.active.load(Ordering::SeqCst) == 0
                && self.service.busy() == 0
                && self.unsettled_connections() == 0
            {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        self.stop.store(true, Ordering::SeqCst);
        self.pool.stop();
        for h in self.reactors {
            let _ = h.join();
        }
        for h in self.workers {
            let _ = h.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
        drained
    }
}

enum ReactorKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

// ---------------------------------------------------------------------------
// The reactor loop.
// ---------------------------------------------------------------------------

/// One reactor: owns its listener and every connection accepted from it.
fn reactor_loop<L: NbListener>(
    listener: L,
    service: &Service,
    drain: &AtomicBool,
    stop: &AtomicBool,
    active: &AtomicUsize,
    unsettled: &AtomicUsize,
    pool: &Arc<WorkerPool>,
) {
    let completions = Completions::new();
    let mut listener = Some(listener);
    let mut conns: Vec<Option<Conn<L::Stream>>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut generation: u64 = 0;
    let mut buf = vec![0u8; READ_CHUNK];
    let mut last_gauges = Instant::now() - GAUGE_PERIOD;
    // Carries across iterations: the reactor parks on the completion
    // queue only when the *previous* full pass moved no bytes and found
    // no work, so a busy connection is never penalized by the park.
    let mut worked = true;
    let mut idle_passes: u32 = 0;
    loop {
        // Deliver completions (parking after idle passes — this wait is
        // the reactor's only sleep, with exponential backoff so a brief
        // lull between a flushed reply and the client's next request
        // costs microseconds, not a full park).
        let park = if worked {
            idle_passes = 0;
            Duration::ZERO
        } else {
            let backoff = POLL_PARK_MIN.saturating_mul(1u32 << idle_passes.min(16));
            idle_passes = idle_passes.saturating_add(1);
            backoff.min(POLL_PARK_MAX)
        };
        worked = false;
        for c in completions.drain(park) {
            worked = true;
            let Some(conn) = conns.get_mut(c.conn.slot).and_then(Option::as_mut) else {
                continue; // connection died mid-compute
            };
            if conn.generation != c.conn.generation {
                continue; // slot reused: stale completion
            }
            conn.pending_jobs -= 1;
            conn.ready.insert(c.seq, c.reply);
        }

        // Drain closes the listener: connects made after this point are
        // refused by the OS instead of parking in a backlog nobody will
        // ever accept.
        if drain.load(Ordering::SeqCst) {
            if listener.take().is_some() {
                worked = true;
            }
        } else if let Some(l) = &listener {
            loop {
                match l.accept_nb() {
                    Ok(stream) => {
                        worked = true;
                        generation += 1;
                        let conn = Conn {
                            stream,
                            generation,
                            frames: FrameBuffer::default(),
                            out: VecDeque::new(),
                            next_seq: 0,
                            next_release: 0,
                            ready: BTreeMap::new(),
                            pending_jobs: 0,
                            closing: false,
                            dead: false,
                        };
                        match free.pop() {
                            Some(slot) => conns[slot] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                    }
                    Err(ref e) if would_block(e) => break,
                    Err(_) => break,
                }
            }
        }

        // Per-connection I/O.
        let mut open = 0usize;
        let mut owed = 0usize;
        for (slot, entry) in conns.iter_mut().enumerate() {
            let Some(conn) = entry.as_mut() else {
                continue;
            };

            // Read until the socket runs dry, dispatching every complete
            // frame (pipelined frames dispatch immediately and
            // concurrently — that is what feeds the batcher).
            if !conn.closing && !conn.dead {
                loop {
                    match conn.stream.read(&mut buf) {
                        Ok(0) => {
                            conn.closing = true;
                            worked = true;
                            break;
                        }
                        Ok(n) => {
                            worked = true;
                            conn.frames.push(&buf[..n]);
                            while let Some(frame) = conn.frames.next_frame() {
                                let seq = conn.next_seq;
                                conn.next_seq += 1;
                                // Chaos hook: a `serve-conn-kill` plan
                                // resets this connection right after it
                                // delivered a frame — the request is
                                // received but its reply never leaves,
                                // exactly the torn state a mid-request
                                // network partition produces. The client
                                // sees EOF and must retry elsewhere.
                                if crate::chaos::conn_kill() {
                                    conn.dead = true;
                                    break;
                                }
                                match frame {
                                    Ok(line) => {
                                        // Inline fast path: a pure cache
                                        // hit is answered on this thread,
                                        // skipping the pool round trip.
                                        // Misses, stats, and bad requests
                                        // return `None` and dispatch. A
                                        // panic here must not kill the
                                        // reactor: treat it as a miss and
                                        // let the worker's own isolation
                                        // boundary absorb it.
                                        let inline = std::panic::catch_unwind(
                                            std::panic::AssertUnwindSafe(|| service.try_hit(&line)),
                                        )
                                        .unwrap_or(None);
                                        if let Some(reply) = inline {
                                            conn.ready.insert(seq, reply);
                                            continue;
                                        }
                                        conn.pending_jobs += 1;
                                        active.fetch_add(1, Ordering::SeqCst);
                                        pool.submit(Job {
                                            conn: ConnId {
                                                slot,
                                                generation: conn.generation,
                                            },
                                            seq,
                                            line,
                                            completions: completions.clone(),
                                        });
                                    }
                                    Err(e) => {
                                        // Typed, in-order, connection
                                        // keeps serving.
                                        conn.ready.insert(
                                            seq,
                                            protocol::render_error("bad-request", &e.detail()),
                                        );
                                    }
                                }
                            }
                            if conn.dead {
                                break;
                            }
                        }
                        Err(ref e) if would_block(e) => break,
                        Err(_) => {
                            conn.dead = true;
                            worked = true;
                            break;
                        }
                    }
                }
            }

            // Release in-order replies and flush what the socket accepts.
            conn.release_ready();
            while !conn.out.is_empty() && !conn.dead {
                let (front, _) = conn.out.as_slices();
                // Chaos hook: a `serve-partial-write` plan caps this
                // pass at one byte, exercising the partial-write
                // bookkeeping a saturated socket produces (the rest
                // stays queued and goes out on later passes).
                let cap = crate::chaos::write_cap()
                    .unwrap_or(front.len())
                    .min(front.len());
                match conn.stream.write(&front[..cap]) {
                    Ok(0) => {
                        conn.dead = true;
                    }
                    Ok(n) => {
                        worked = true;
                        conn.out.drain(..n);
                    }
                    Err(ref e) if would_block(e) => break,
                    Err(_) => {
                        conn.dead = true;
                    }
                }
            }

            // Retire connections that owe nothing (or can't be paid).
            let retire = conn.dead || (conn.closing && conn.unsettled() == 0);
            if retire {
                *entry = None;
                free.push(slot);
                worked = true;
            } else {
                open += 1;
                if conn.unsettled() > 0 {
                    owed += 1;
                }
            }
        }
        unsettled.store(owed, Ordering::SeqCst);

        if paxsim_obs::enabled() && last_gauges.elapsed() >= GAUGE_PERIOD {
            last_gauges = Instant::now();
            paxsim_obs::gauge("serve.reactor.open_connections").set(open as f64);
            paxsim_obs::gauge("serve.reactor.ready_queue_depth").set(pool.depth() as f64);
        }

        if stop.load(Ordering::SeqCst) {
            // Final flush attempt happened above; anything still owed
            // missed the grace period.
            return;
        }
    }
}
