//! Request handling: admission control, single-flight coalescing, the
//! batched compute path, and daemon statistics.
//!
//! One [`Service`] is shared by every connection. A `simulate` request
//! flows: parse → resolve/validate → content hash → sharded cache lookup
//! → (miss) single-flight table → drain check → **batcher** (compatible
//! concurrent misses gather into one group) → admission gate (one permit
//! per batch) → one shared sweep on the panic-isolating pool → per-item
//! cache put → per-request demux → reply. The serial baseline
//! a parallel cell's speedup divides by is its *own* cached sub-request
//! (hashed under the serial variant of the spec), fetched without
//! re-entering the admission gate — a request that was admitted owns
//! enough budget for its own denominator, and gating it again could
//! deadlock a fully-loaded daemon.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use paxsim_core::error::{StudyError, StudyResult};
use paxsim_core::hash::{content_hash, fnv1a, ResolvedSpec};
use paxsim_core::inflight::Inflight;
use paxsim_core::journal::{Record, SideRecord};
use paxsim_core::pool::{self, CellPolicy};
use paxsim_core::single::run_trials_with;
use paxsim_core::store::{TraceKey, TraceStore};
use paxsim_machine::sim::simulate;
use paxsim_perfmon::stats::Summary;
use serde::{Serialize, Value};

use crate::batch::{Batcher, Role};
use crate::cache::ResultCache;
use crate::protocol::{self, Request};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the on-disk cache tier.
    pub cache_dir: std::path::PathBuf,
    /// Memory-tier capacity in records.
    pub mem_cap: usize,
    /// Concurrent cache-miss computations admitted.
    pub max_running: usize,
    /// Computations allowed to queue behind the running set before the
    /// daemon answers `overloaded`.
    pub max_queue: usize,
    /// Watchdog deadline applied to computations whose request did not
    /// set `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Result-cache shards (consistent-hashed by `ConfigHash`). More
    /// shards, less lock contention; entries relocate on change (a
    /// relocated entry misses once, it is never served wrong).
    pub shards: usize,
    /// Batch gather window in milliseconds. `0` disables batching
    /// (every miss executes immediately as a batch of one — the
    /// reference semantics the batched path is differentially tested
    /// against). Nonzero trades that many ms of cold-miss latency for
    /// merging compatible concurrent misses into one sweep.
    pub batch_window_ms: u64,
    /// Reactor compute-worker threads; `0` sizes automatically to
    /// `max_running + max_queue + 4` so cache hits keep flowing while
    /// every admission slot is occupied by blocked batch leaders.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            cache_dir: std::path::PathBuf::from("paxsim-serve-cache"),
            mem_cap: 256,
            max_running: cores,
            max_queue: 2 * cores,
            default_deadline_ms: None,
            shards: crate::cache::DEFAULT_SHARDS,
            batch_window_ms: 0,
            workers: 0,
        }
    }
}

impl ServeConfig {
    /// Effective reactor worker-thread count (resolves the `0` default).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            self.max_running + self.max_queue + 4
        }
    }
}

// ---------------------------------------------------------------------------
// Admission gate.
// ---------------------------------------------------------------------------

struct GateState {
    running: usize,
    queued: usize,
}

/// Bounded running set plus bounded wait queue. Only cache-miss
/// computations pass through here — hits and stats are always served.
struct Gate {
    max_running: usize,
    max_queue: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

/// RAII running-set slot; dropping it wakes one queued waiter.
struct Permit<'a>(&'a Gate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        lock(&self.0.state).running -= 1;
        self.0.cv.notify_one();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Gate {
    fn new(max_running: usize, max_queue: usize) -> Gate {
        Gate {
            max_running: max_running.max(1),
            max_queue,
            state: Mutex::new(GateState {
                running: 0,
                queued: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claim a running slot, queueing if the running set is full.
    /// Returns `Err((running, queued))` when the queue is also full.
    fn admit(&self) -> Result<Permit<'_>, (usize, usize)> {
        let mut s = lock(&self.state);
        if s.running >= self.max_running {
            if s.queued >= self.max_queue {
                return Err((s.running, s.queued));
            }
            s.queued += 1;
            while s.running >= self.max_running {
                s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner());
            }
            s.queued -= 1;
        }
        s.running += 1;
        Ok(Permit(self))
    }

    fn depth(&self) -> (usize, usize) {
        let s = lock(&self.state);
        (s.running, s.queued)
    }
}

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

/// How the admission gate disposed of a flight that never computed.
/// Travels through the single-flight table so every rider of a rejected
/// flight sees the same typed rejection.
#[derive(Debug, Clone)]
enum Gated {
    Overloaded { running: usize, queued: usize },
    Draining,
}

/// Everything a request touches, shared across connections.
pub struct Service {
    cfg: ServeConfig,
    store: TraceStore,
    cache: ResultCache,
    /// Client-facing flights: one admission-gate pass per flight, shared
    /// by every identical concurrent request.
    inflight: Inflight<Result<Record, Gated>>,
    /// Ungated flights for serial-baseline sub-requests. A separate
    /// table: a gated flight can block in the admission queue, and a
    /// permit-holding computation joining it there would deadlock.
    sub_inflight: Inflight<Record>,
    /// Compatible concurrent misses gather here into shared sweeps; one
    /// admission-gate pass and one pool per batch.
    batcher: Batcher<ResolvedSpec, StudyResult<Result<Record, Gated>>>,
    gate: Gate,
    draining: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    computed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    /// Serial-baseline sub-requests performed (each books exactly one
    /// cache-tier counter, like every client request — conservation).
    baseline_fetches: AtomicU64,
    /// Cold-miss compute latency in milliseconds, per kernel.
    latencies: Mutex<HashMap<String, Vec<f64>>>,
}

impl Service {
    /// Open the cache and stand the service up.
    ///
    /// # Errors
    ///
    /// Cache-journal I/O errors (unreadable directory, bad permissions).
    pub fn open(cfg: ServeConfig) -> StudyResult<Service> {
        // The daemon runs with observability on unless explicitly opted
        // out (PAXSIM_OBS=0): a `metrics` scrape against a fresh daemon
        // must work without extra environment plumbing. Replies are
        // cache-journal records either way, so determinism is untouched.
        if std::env::var_os("PAXSIM_OBS").is_none_or(|v| v != "0") {
            paxsim_obs::set_enabled(true);
        }
        let cache = ResultCache::open(&cfg.cache_dir, cfg.mem_cap, cfg.shards)?;
        let gate = Gate::new(cfg.max_running, cfg.max_queue);
        let batcher = Batcher::new(Duration::from_millis(cfg.batch_window_ms));
        Ok(Service {
            cfg,
            store: TraceStore::new(),
            cache,
            inflight: Inflight::new(),
            sub_inflight: Inflight::new(),
            batcher,
            gate,
            draining: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            baseline_fetches: AtomicU64::new(0),
            latencies: Mutex::new(HashMap::new()),
        })
    }

    /// Handle one request line, returning one reply line (no trailing
    /// newline). Never panics on client input.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        static REQUESTS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.requests");
        REQUESTS.inc();
        let _span = paxsim_obs::span!("serve.request");
        match protocol::parse_request(line) {
            Ok(Request::Stats) => self.stats_reply(),
            Ok(Request::Metrics) => self.metrics_reply(),
            Ok(Request::Simulate { spec, deadline_ms }) => {
                let resolved = match spec.resolve() {
                    Ok(r) => r,
                    Err(e) => {
                        return protocol::render_error(protocol::error_category(&e), &e.to_string())
                    }
                };
                match self.simulate(&resolved, deadline_ms) {
                    Ok(rec) => {
                        protocol::render_result(resolved.content_hash(), &resolved.spec, &rec)
                    }
                    Err(Rejection::Overloaded { running, queued }) => protocol::render_error(
                        "overloaded",
                        &format!("{running} computations running, {queued} queued; try again"),
                    ),
                    Err(Rejection::Draining) => {
                        protocol::render_error("draining", "daemon is shutting down")
                    }
                    Err(Rejection::Failed(e)) => {
                        protocol::render_error(protocol::error_category(&e), &e.to_string())
                    }
                }
            }
            Err(e) => protocol::render_error(protocol::error_category(&e), &e.to_string()),
        }
    }

    /// Reactor fast path: answer `line` inline **iff** it is a
    /// `simulate` request whose result is already cached. Anything else
    /// — a miss, `stats`/`metrics`, malformed input — returns `None`
    /// and must be dispatched to the worker pool as usual.
    ///
    /// Serving hits on the reactor thread skips the pool round trip
    /// (two context switches per request — on a loaded single-core host
    /// that is roughly half the wire cost of a hit). The reply is
    /// rendered by the same [`protocol::render_result`] call on the
    /// same cached record, so it is byte-identical to the worker path.
    ///
    /// Accounting matches [`Service::handle_line`] exactly: the request
    /// counter moves only when the request is actually answered here,
    /// and the cache probe books a hit counter on success and *nothing*
    /// on a miss — the worker path's own `get` will book that miss, so
    /// every simulate request still books exactly one tier counter.
    pub fn try_hit(&self, line: &str) -> Option<String> {
        let Ok(Request::Simulate { spec, .. }) = protocol::parse_request(line) else {
            return None;
        };
        let resolved = spec.resolve().ok()?;
        let hash = resolved.content_hash();
        let rec = self.cache.probe(hash)?;
        self.requests.fetch_add(1, Ordering::Relaxed);
        static REQUESTS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.requests");
        static INLINE: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.inline_hits");
        REQUESTS.inc();
        INLINE.inc();
        let _span = paxsim_obs::span!("serve.request");
        Some(protocol::render_result(hash, &resolved.spec, &rec))
    }

    /// Serve one resolved simulation request: cache, then a coalesced
    /// flight whose *leader* passes the drain check and hands the miss to
    /// the batcher — identical concurrent requests cost one flight, and
    /// compatible distinct ones share a sweep and a gate permit.
    fn simulate(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Record, Rejection> {
        static LED: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.flight.led");
        static JOINED: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.flight.joined");
        let hash = resolved.content_hash();
        if let Some(rec) = self.cache.get(hash) {
            return Ok(rec);
        }
        // The one cache-tier counter this request books moved above
        // (a miss); everything below must stay counter-neutral so the
        // conservation law `hits + misses == simulate requests +
        // baseline fetches` holds even when a flight is cancelled by
        // its deadline mid-coalesce.
        let (result, flight) = self.inflight.run(hash.0, || {
            let _span = paxsim_obs::span!("serve.flight", kernel = resolved.spec.kernel);
            // Double-check: a flight for this key may have landed (and
            // cached) between the lookup above and this slot claim. A
            // `peek`, not a `get` — this request already booked its miss.
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(Ok(rec));
            }
            if self.draining() {
                self.rejected_draining.fetch_add(1, Ordering::Relaxed);
                return Ok(Err(Gated::Draining));
            }
            self.batched_compute(resolved, deadline_ms)
        });
        match flight {
            paxsim_core::inflight::Flight::Led => LED.inc(),
            paxsim_core::inflight::Flight::Joined => JOINED.inc(),
        }
        match result {
            Ok(Ok(rec)) => Ok(rec),
            Ok(Err(Gated::Overloaded { running, queued })) => {
                Err(Rejection::Overloaded { running, queued })
            }
            Ok(Err(Gated::Draining)) => Err(Rejection::Draining),
            Err(e) => Err(Rejection::Failed(e)),
        }
    }

    /// The batch-compatibility key: the canonical spec with the sweep
    /// coordinates (kernel, configuration) blanked, content-hashed, with
    /// the request deadline folded in. Two misses merge into one sweep
    /// exactly when they agree on class, trials, jitter, schedule, the
    /// full machine model, *and* deadline — so a merged batch runs under
    /// one [`CellPolicy`] that honors every member's deadline (they are
    /// all the same deadline).
    fn batch_key(resolved: &ResolvedSpec, deadline_ms: Option<u64>) -> u64 {
        let mut probe = resolved.spec.clone();
        probe.kernel = String::new();
        probe.config = String::new();
        let spec_hash = content_hash(&probe).0;
        fnv1a(format!("{spec_hash:016x}|{deadline_ms:?}").as_bytes())
    }

    /// Route one cache miss through the batcher. With a zero window this
    /// is a pass-through (immediate batch of one — byte-identical to the
    /// pre-batching path, which the differential test asserts).
    fn batched_compute(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Result<Record, Gated>> {
        static BATCHES: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.batch.batches");
        static MERGED: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.batch.merged");
        static SIZE: paxsim_obs::LazyHistogram = paxsim_obs::LazyHistogram::new("serve.batch.size");
        let key = Self::batch_key(resolved, deadline_ms);
        let (result, role) = self.batcher.submit(key, resolved.clone(), |items| {
            self.execute_batch(items, deadline_ms)
        });
        if let Role::Led { size } = role {
            BATCHES.inc();
            MERGED.add(size as u64 - 1);
            // The exponential seconds buckets (1e-6·4^i) double as base-4
            // *size* buckets under this scaling: bucket i covers batch
            // sizes up to 4^i.
            SIZE.observe(size as f64 * 1e-6);
        }
        result
    }

    /// Execute one gathered batch: one admission-gate pass, one shared
    /// sweep, one cache put per member. Results are positional (slot `i`
    /// answers the submitter of item `i`).
    ///
    /// **Equivalence:** each cell calls [`Service::compute_cell`] on its
    /// own resolved spec, exactly as an unbatched request would; cells
    /// share nothing but the scoped pool (and the caches/trace store they
    /// already shared across connections), and `compute_cell` is
    /// deterministic in its spec. Batching therefore changes only *when*
    /// and *beside whom* a computation runs — the record that lands in
    /// the cache, and the reply rendered from it, are byte-identical to
    /// the unbatched execution (DESIGN.md §13 states the full argument).
    fn execute_batch(
        &self,
        items: Vec<ResolvedSpec>,
        deadline_ms: Option<u64>,
    ) -> Vec<StudyResult<Result<Record, Gated>>> {
        let admitted = {
            let _span = paxsim_obs::span!("serve.admission");
            self.gate.admit()
        };
        let _permit = match admitted {
            Ok(p) => p,
            Err((running, queued)) => {
                self.rejected_overload
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                return items
                    .iter()
                    .map(|_| Ok(Err(Gated::Overloaded { running, queued })))
                    .collect();
            }
        };
        let policy = CellPolicy {
            deadline: deadline_ms
                .or(self.cfg.default_deadline_ms)
                .map(Duration::from_millis),
            ..CellPolicy::default()
        };
        let sweep = pool::map_indexed_isolated(items.len(), &policy, |i| {
            let item = &items[i];
            let _span = paxsim_obs::span!(
                "serve.compute",
                kernel = item.spec.kernel,
                config = item.spec.config
            );
            let t0 = Instant::now();
            let sides = self.compute_cell(item)?;
            Ok((sides, t0.elapsed().as_secs_f64()))
        });
        sweep
            .results
            .into_iter()
            .zip(&items)
            .map(|(res, item)| {
                let (sides, elapsed) = res?;
                let rec = self.cache.put(item.content_hash(), sides)?;
                self.computed.fetch_add(1, Ordering::Relaxed);
                if paxsim_obs::enabled() {
                    paxsim_obs::histogram_with(
                        "serve.compute_seconds",
                        &[("kernel", item.spec.kernel.as_str())],
                    )
                    .observe(elapsed);
                }
                lock(&self.latencies)
                    .entry(item.spec.kernel.clone())
                    .or_default()
                    .push(elapsed * 1e3);
                Ok(Ok(rec))
            })
            .collect()
    }

    /// The serial-baseline sub-request: cache-or-compute with its own
    /// single-flight table and *no* admission gate — the parallel
    /// computation asking for it already owns a permit, and its budget
    /// covers the denominator.
    fn fetch_baseline(&self, resolved: &ResolvedSpec) -> StudyResult<Record> {
        self.baseline_fetches.fetch_add(1, Ordering::Relaxed);
        let hash = resolved.content_hash();
        if let Some(rec) = self.cache.get(hash) {
            return Ok(rec);
        }
        let (result, _flight) = self.sub_inflight.run(hash.0, || {
            // `peek`, not `get`: the fetch booked its one tier counter
            // in the lookup above (see the conservation note in
            // `simulate`).
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(rec);
            }
            self.compute_and_cache(resolved, None)
        });
        result
    }

    /// Compute, store, and account one cold miss.
    fn compute_and_cache(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Record> {
        let _span = paxsim_obs::span!(
            "serve.compute",
            kernel = resolved.spec.kernel,
            config = resolved.spec.config
        );
        let t0 = Instant::now();
        let sides = self.compute(resolved, deadline_ms)?;
        let rec = self.cache.put(resolved.content_hash(), sides)?;
        self.computed.fetch_add(1, Ordering::Relaxed);
        let elapsed = t0.elapsed().as_secs_f64();
        if paxsim_obs::enabled() {
            paxsim_obs::histogram_with(
                "serve.compute_seconds",
                &[("kernel", resolved.spec.kernel.as_str())],
            )
            .observe(elapsed);
        }
        lock(&self.latencies)
            .entry(resolved.spec.kernel.clone())
            .or_default()
            .push(elapsed * 1e3);
        Ok(rec)
    }

    /// Run the simulation behind a one-cell fault-isolated sweep: a
    /// panicking engine cell (injected or real) is caught and retried
    /// with backoff instead of killing the connection thread, and the
    /// watchdog deadline turns a runaway cell into a typed `deadline`
    /// error.
    fn compute(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Vec<SideRecord>> {
        let policy = CellPolicy {
            deadline: deadline_ms
                .or(self.cfg.default_deadline_ms)
                .map(Duration::from_millis),
            ..CellPolicy::default()
        };
        let mut sweep = pool::map_indexed_isolated(1, &policy, |_| self.compute_cell(resolved));
        sweep.results.pop().expect("one-cell sweep has one result")
    }

    /// The actual simulation: trace build (shared store), trials, and —
    /// for parallel configurations — the serial-baseline sub-request that
    /// the speedup divides by.
    fn compute_cell(&self, resolved: &ResolvedSpec) -> StudyResult<Vec<SideRecord>> {
        let opts = resolved.options();
        let trace = self.store.try_get(TraceKey {
            kernel: resolved.kernel,
            class: resolved.class,
            nthreads: resolved.config.threads,
            schedule: resolved.schedule,
        })?;
        let (cycles, counters) = run_trials_with(&opts, &trace, &resolved.config, &|jobs| {
            simulate(&opts.machine, jobs)
        });
        let speedups: Vec<f64> = if resolved.config.threads == 1 && resolved.config.group == 0 {
            vec![1.0; opts.trials]
        } else {
            let serial = resolved.serial_variant().resolve()?;
            let base = self.fetch_baseline(&serial)?;
            let base_mean = base.sides[0].cycles.mean;
            cycles.iter().map(|&c| base_mean / c).collect()
        };
        Ok(vec![SideRecord {
            bench: resolved.spec.kernel.clone(),
            cycles: Summary::of(&cycles),
            speedup: Summary::of(&speedups),
            counters,
        }])
    }

    /// Render the `stats` reply.
    fn stats_reply(&self) -> String {
        let (running, queued) = self.gate.depth();
        let latency: Vec<(String, Value)> = {
            let lat = lock(&self.latencies);
            let mut kernels: Vec<&String> = lat.keys().collect();
            kernels.sort();
            kernels
                .into_iter()
                .map(|k| (k.clone(), Summary::of(&lat[k]).to_value()))
                .collect()
        };
        let obj = |entries: Vec<(&str, Value)>| {
            Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let v = obj(vec![
            ("ok", Value::Bool(true)),
            (
                "uptime_ms",
                Value::UInt(self.started.elapsed().as_millis() as u64),
            ),
            (
                "requests",
                Value::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            ("draining", Value::Bool(self.draining())),
            (
                "cache",
                obj(vec![
                    ("mem_hits", Value::UInt(self.cache.mem_hits())),
                    ("disk_hits", Value::UInt(self.cache.disk_hits())),
                    ("misses", Value::UInt(self.cache.misses())),
                    ("entries_mem", Value::UInt(self.cache.mem_len() as u64)),
                    ("entries_disk", Value::UInt(self.cache.disk_len() as u64)),
                    (
                        "corrupt_dropped",
                        Value::UInt(self.cache.corrupt_dropped() as u64),
                    ),
                    (
                        "shards",
                        Value::Array(
                            self.cache
                                .shard_stats()
                                .iter()
                                .map(|s| {
                                    obj(vec![
                                        ("mem_hits", Value::UInt(s.mem_hits)),
                                        ("disk_hits", Value::UInt(s.disk_hits)),
                                        ("misses", Value::UInt(s.misses)),
                                        ("puts", Value::UInt(s.puts)),
                                        ("entries_mem", Value::UInt(s.entries_mem as u64)),
                                        ("entries_disk", Value::UInt(s.entries_disk as u64)),
                                        ("corrupt_dropped", Value::UInt(s.corrupt_dropped as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "batch",
                obj(vec![
                    ("window_ms", Value::UInt(self.cfg.batch_window_ms)),
                    ("batches", Value::UInt(self.batcher.batches())),
                    ("merged", Value::UInt(self.batcher.merged())),
                    (
                        "open_groups",
                        Value::UInt(self.batcher.open_groups() as u64),
                    ),
                ]),
            ),
            (
                "inflight",
                obj(vec![
                    ("current", Value::UInt(self.inflight.in_flight() as u64)),
                    ("led", Value::UInt(self.inflight.led())),
                    ("joined", Value::UInt(self.inflight.joined())),
                ]),
            ),
            (
                "admission",
                obj(vec![
                    ("running", Value::UInt(running as u64)),
                    ("queued", Value::UInt(queued as u64)),
                    ("max_running", Value::UInt(self.cfg.max_running as u64)),
                    ("max_queue", Value::UInt(self.cfg.max_queue as u64)),
                    (
                        "rejected_overload",
                        Value::UInt(self.rejected_overload.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected_draining",
                        Value::UInt(self.rejected_draining.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "computed",
                Value::UInt(self.computed.load(Ordering::Relaxed)),
            ),
            (
                "baseline_fetches",
                Value::UInt(self.baseline_fetches.load(Ordering::Relaxed)),
            ),
            ("traces_built", Value::UInt(self.store.builds())),
            ("latency_ms", Value::Object(latency)),
        ]);
        serde_json::to_string(&v).expect("value tree renders infallibly")
    }

    /// Render the `metrics` reply: refresh the scrape-time gauges, then
    /// ship the registry snapshot as both Prometheus exposition text and
    /// structured JSON. Counters/histograms accumulate at their call
    /// sites; only point-in-time state is sampled here.
    fn metrics_reply(&self) -> String {
        if paxsim_obs::enabled() {
            let (running, queued) = self.gate.depth();
            paxsim_obs::gauge("serve.admission.running").set(running as f64);
            paxsim_obs::gauge("serve.admission.queued").set(queued as f64);
            paxsim_obs::gauge("serve.cache.entries_mem").set(self.cache.mem_len() as f64);
            paxsim_obs::gauge("serve.cache.entries_disk").set(self.cache.disk_len() as f64);
            paxsim_obs::gauge("serve.inflight.current").set(self.inflight.in_flight() as f64);
            paxsim_obs::gauge("serve.draining").set(f64::from(u8::from(self.draining())));
            paxsim_obs::gauge("serve.uptime_seconds").set(self.started.elapsed().as_secs_f64());
            paxsim_obs::gauge("serve.batch.open_groups").set(self.batcher.open_groups() as f64);
            paxsim_obs::gauge("serve.cache.shards").set(self.cache.shard_count() as f64);
            for (i, s) in self.cache.shard_stats().iter().enumerate() {
                let shard = i.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                paxsim_obs::gauge_with("serve.cache.shard.mem_hits", labels).set(s.mem_hits as f64);
                paxsim_obs::gauge_with("serve.cache.shard.disk_hits", labels)
                    .set(s.disk_hits as f64);
                paxsim_obs::gauge_with("serve.cache.shard.misses", labels).set(s.misses as f64);
                paxsim_obs::gauge_with("serve.cache.shard.entries_mem", labels)
                    .set(s.entries_mem as f64);
                paxsim_obs::gauge_with("serve.cache.shard.entries_disk", labels)
                    .set(s.entries_disk as f64);
            }
        }
        let snap = paxsim_obs::snapshot();
        let v = Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("enabled".to_string(), Value::Bool(paxsim_obs::enabled())),
            ("series".to_string(), Value::UInt(snap.series() as u64)),
            (
                "prometheus".to_string(),
                Value::String(snap.to_prometheus()),
            ),
            ("snapshot".to_string(), snap.to_json()),
        ]);
        serde_json::to_string(&v).expect("value tree renders infallibly")
    }

    /// Serial-baseline sub-requests performed.
    pub fn baseline_fetches(&self) -> u64 {
        self.baseline_fetches.load(Ordering::Relaxed)
    }

    /// Stop admitting new computations (cache hits and stats still
    /// serve). The journal flushes per append, so no separate cache
    /// flush is needed.
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Computations currently admitted (running or queued).
    pub fn busy(&self) -> usize {
        let (running, queued) = self.gate.depth();
        running + queued
    }

    /// Cold-miss computations performed.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// The shared trace store (its `builds()` counter lets tests prove a
    /// cache hit did zero engine work).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The result cache (hit/miss counters).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The service configuration as opened.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Batches executed by the gather-window batcher.
    pub fn batches(&self) -> u64 {
        self.batcher.batches()
    }

    /// Requests that rode another request's batch (merge count).
    pub fn batch_merged(&self) -> u64 {
        self.batcher.merged()
    }
}

enum Rejection {
    Overloaded { running: usize, queued: usize },
    Draining,
    Failed(StudyError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Barrier;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("paxsim_serve_service_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn service(name: &str) -> Service {
        Service::open(ServeConfig {
            cache_dir: tmp(name),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    const EP_CMP: &str = r#"{"op":"simulate","kernel":"ep","config":"CMP"}"#;

    #[test]
    fn miss_then_hit_is_byte_identical_with_no_new_engine_work() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("hit");
        let cold = s.handle_line(EP_CMP);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        let builds = s.store().builds();
        let computed = s.computed();
        let hot = s.handle_line(EP_CMP);
        assert_eq!(cold, hot, "cache hit must be byte-identical");
        assert_eq!(s.store().builds(), builds, "hit built no traces");
        assert_eq!(s.computed(), computed, "hit computed nothing");
        assert!(s.cache().hits() >= 1);
    }

    #[test]
    fn speedup_agrees_with_the_single_program_driver() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("parity");
        let reply = s.handle_line(EP_CMP);
        let v = serde_json::parse(&reply).unwrap();
        let served = v["result"]["sides"][0]["speedup"]["mean"].as_f64().unwrap();
        let opts = paxsim_core::study::StudyOptions::quick()
            .with_benchmarks(vec![paxsim_nas::KernelId::Ep]);
        let study =
            paxsim_core::single::run_single_program(&opts, &paxsim_core::store::TraceStore::new());
        let reference = study
            .cell(paxsim_nas::KernelId::Ep, "CMP")
            .unwrap()
            .speedup
            .mean;
        assert_eq!(served, reference, "serve path must match the driver");
    }

    #[test]
    fn serial_request_serves_unit_speedup_and_seeds_the_baseline() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("serial");
        let reply = s.handle_line(r#"{"op":"simulate","kernel":"ep","config":"Serial"}"#);
        let v = serde_json::parse(&reply).unwrap();
        assert_eq!(
            v["result"]["sides"][0]["speedup"]["mean"].as_f64(),
            Some(1.0)
        );
        // The parallel request's denominator is now a cache hit: exactly
        // one more computation happens, not two.
        let computed = s.computed();
        s.handle_line(EP_CMP);
        assert_eq!(s.computed(), computed + 1);
    }

    #[test]
    fn draining_refuses_misses_but_serves_hits_and_stats() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("drain");
        let cold = s.handle_line(EP_CMP);
        s.set_draining();
        let hit = s.handle_line(EP_CMP);
        assert_eq!(cold, hit, "hits still serve while draining");
        let miss = s.handle_line(r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#);
        assert!(miss.contains("\"error\":\"draining\""), "{miss}");
        let stats = s.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"draining\":true"), "{stats}");
    }

    #[test]
    fn bad_requests_are_typed_not_fatal() {
        let s = service("bad");
        let r = s.handle_line(r#"{"op":"simulate","kernel":"zz","config":"CMP"}"#);
        assert!(r.contains("\"error\":\"bad-request\""), "{r}");
        assert!(r.contains("zz"), "{r}");
        let r = s.handle_line("garbage");
        assert!(r.contains("\"error\":\"bad-request\""), "{r}");
    }

    #[test]
    fn gate_admits_bounded_and_rejects_typed() {
        let g = Gate::new(1, 1);
        let p0 = g.admit().unwrap();
        // Running set full, queue empty: a queued waiter blocks, so test
        // the reject path by filling the queue from another thread that
        // never gets the slot until we drop p0.
        let gate = &g;
        let queued = Barrier::new(2);
        std::thread::scope(|scope| {
            let qref = &queued;
            let h = scope.spawn(move || {
                qref.wait();
                let _p = gate.admit().unwrap(); // queues, then runs
            });
            queued.wait();
            // Wait for the spawned thread to be *queued*.
            while gate.depth().1 == 0 {
                std::thread::yield_now();
            }
            assert_eq!(
                gate.admit().err(),
                Some((1, 1)),
                "running and queue both full must reject"
            );
            drop(p0);
            h.join().unwrap();
        });
        assert_eq!(g.depth(), (0, 0), "permits all returned");
    }

    #[test]
    fn injected_cell_panic_is_retried_not_fatal() {
        // One injected panic on the compute cell: the isolation layer
        // retries and the client still gets a result.
        paxsim_core::faultinject::with_plan("cell-panic:0:1", || {
            let s = service("fault");
            let r = s.handle_line(EP_CMP);
            assert!(r.contains("\"ok\":true"), "{r}");
        });
    }

    #[test]
    fn compatible_concurrent_misses_merge_into_one_batch() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = Service::open(ServeConfig {
            cache_dir: tmp("merge"),
            batch_window_ms: 120,
            ..ServeConfig::default()
        })
        .unwrap();
        // Same class/trials/schedule/machine/deadline, different sweep
        // coordinates: these must gather into one group.
        let lines = [
            EP_CMP,
            r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#,
            r#"{"op":"simulate","kernel":"is","config":"CMP"}"#,
        ];
        let gate = std::sync::Barrier::new(lines.len());
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .map(|line| {
                    let (s, gate) = (&s, &gate);
                    scope.spawn(move || {
                        gate.wait();
                        s.handle_line(line)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &replies {
            assert!(r.contains("\"ok\":true"), "{r}");
        }
        assert!(
            s.batch_merged() >= 1,
            "concurrent compatible misses must merge (merged = {}, batches = {})",
            s.batch_merged(),
            s.batches()
        );
        assert_eq!(
            s.computed(),
            6,
            "3 parallel kernels + 3 per-kernel serial baselines, once each"
        );
    }

    #[test]
    fn incompatible_requests_never_merge() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = Service::open(ServeConfig {
            cache_dir: tmp("nomerge"),
            batch_window_ms: 60,
            ..ServeConfig::default()
        })
        .unwrap();
        // Different trial counts → different batch keys.
        let lines = [
            r#"{"op":"simulate","kernel":"ep","config":"CMP","trials":1}"#,
            r#"{"op":"simulate","kernel":"cg","config":"CMP","trials":2}"#,
        ];
        let gate = std::sync::Barrier::new(lines.len());
        std::thread::scope(|scope| {
            for line in &lines {
                let (s, gate) = (&s, &gate);
                scope.spawn(move || {
                    gate.wait();
                    let r = s.handle_line(line);
                    assert!(r.contains("\"ok\":true"), "{r}");
                });
            }
        });
        assert_eq!(s.batch_merged(), 0, "incompatible specs must not merge");
    }

    #[test]
    fn batched_replies_are_byte_identical_to_unbatched() {
        // The batching equivalence argument, tested differentially: the
        // same request set served through a wide-open gather window
        // (merged sweep) and through a zero window (sequential batches of
        // one) must produce byte-identical reply lines.
        let _quiet = paxsim_core::faultinject::quiesced();
        let lines = [
            EP_CMP,
            r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#,
            r#"{"op":"simulate","kernel":"is","config":"CMP"}"#,
            r#"{"op":"simulate","kernel":"ep","config":"CMT"}"#,
        ];
        let plain = Service::open(ServeConfig {
            cache_dir: tmp("diff_plain"),
            batch_window_ms: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let unbatched: Vec<String> = lines.iter().map(|l| plain.handle_line(l)).collect();
        assert_eq!(plain.batch_merged(), 0);

        let batched_svc = Service::open(ServeConfig {
            cache_dir: tmp("diff_batched"),
            batch_window_ms: 150,
            ..ServeConfig::default()
        })
        .unwrap();
        let gate = std::sync::Barrier::new(lines.len());
        let batched: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .map(|line| {
                    let (s, gate) = (&batched_svc, &gate);
                    scope.spawn(move || {
                        gate.wait();
                        s.handle_line(line)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            batched_svc.batch_merged() >= 1,
            "differential run must actually exercise a merged batch"
        );
        for (line, (b, u)) in lines.iter().zip(batched.iter().zip(&unbatched)) {
            assert!(b.contains("\"ok\":true"), "{b}");
            assert_eq!(b, u, "batched reply for {line} diverged from unbatched");
        }
    }

    #[test]
    fn deadline_maps_to_typed_reply() {
        // A 1 ms deadline with an injected 60 ms stall: the watchdog
        // flags the cell and the client sees a `deadline` error.
        paxsim_core::faultinject::with_plan("cell-slow:0:60:1", || {
            let s = service("deadline");
            let r =
                s.handle_line(r#"{"op":"simulate","kernel":"ep","config":"CMP","deadline_ms":1}"#);
            assert!(r.contains("\"error\":\"deadline\""), "{r}");
        });
    }
}
