//! Request handling: admission control, single-flight coalescing, the
//! batched compute path, and daemon statistics.
//!
//! One [`Service`] is shared by every connection. A `simulate` request
//! flows: parse → resolve/validate → content hash → sharded cache lookup
//! → (miss) single-flight table → drain check → **batcher** (compatible
//! concurrent misses gather into one group) → admission gate (one permit
//! per batch) → one shared sweep on the panic-isolating pool → per-item
//! cache put → per-request demux → reply. The serial baseline
//! a parallel cell's speedup divides by is its *own* cached sub-request
//! (hashed under the serial variant of the spec), fetched without
//! re-entering the admission gate — a request that was admitted owns
//! enough budget for its own denominator, and gating it again could
//! deadlock a fully-loaded daemon.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use paxsim_core::error::{StudyError, StudyResult};
use paxsim_core::hash::{content_hash, fnv1a, Fidelity, ResolvedSpec};
use paxsim_core::inflight::Inflight;
use paxsim_core::journal::{Record, SideRecord};
use paxsim_core::pool::{self, CellPolicy};
use paxsim_core::sentinel::{MetricError, PredictAuditor};
use paxsim_core::single::run_trials_with;
use paxsim_core::store::{TraceKey, TraceStore};
use paxsim_core::tune::{self, TuneRequest, TuneResult};
use paxsim_machine::sim::simulate;
use paxsim_perfmon::stats::Summary;
use paxsim_predict::{predict_program, profile_program, ErrorBounds, Predicted};
use serde::{Serialize, Value};

use crate::batch::{Batcher, Role};
use crate::breaker::Breaker;
use crate::cache::ResultCache;
use crate::protocol::{self, Request};

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Directory holding the on-disk cache tier.
    pub cache_dir: std::path::PathBuf,
    /// Memory-tier capacity in records.
    pub mem_cap: usize,
    /// Concurrent cache-miss computations admitted.
    pub max_running: usize,
    /// Computations allowed to queue behind the running set before the
    /// daemon answers `overloaded`.
    pub max_queue: usize,
    /// Watchdog deadline applied to computations whose request did not
    /// set `deadline_ms`.
    pub default_deadline_ms: Option<u64>,
    /// Result-cache shards (consistent-hashed by `ConfigHash`). More
    /// shards, less lock contention; entries relocate on change (a
    /// relocated entry misses once, it is never served wrong).
    pub shards: usize,
    /// Batch gather window in milliseconds. `0` disables batching
    /// (every miss executes immediately as a batch of one — the
    /// reference semantics the batched path is differentially tested
    /// against). Nonzero trades that many ms of cold-miss latency for
    /// merging compatible concurrent misses into one sweep.
    pub batch_window_ms: u64,
    /// Reactor compute-worker threads; `0` sizes automatically to
    /// `max_running + max_queue + 4` so cache hits keep flowing while
    /// every admission slot is occupied by blocked batch leaders.
    pub workers: usize,
    /// Fsync each cache-journal append (`FsyncPolicy::Fsync`). Default
    /// off: flush-to-OS survives a daemon kill; fsync additionally
    /// survives power loss at a disk round trip per record — and a lost
    /// record is only ever a recompute, never a wrong answer.
    pub fsync: bool,
    /// Circuit-breaker trip threshold: consecutive *post-retry* failures
    /// of one config before it is quarantined. `0` disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped config stays quarantined before one probe
    /// request is let through.
    pub breaker_cooldown_ms: u64,
    /// Prediction-audit sampling period: after the always-audited first
    /// cold prediction of a (kernel, config, class) pair, every Nth
    /// fresh prediction of that pair is re-run on the cycle engine and
    /// its error measured against the declared bounds. `0` audits only
    /// the first.
    pub predict_sample_every: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            cache_dir: std::path::PathBuf::from("paxsim-serve-cache"),
            mem_cap: 256,
            max_running: cores,
            max_queue: 2 * cores,
            default_deadline_ms: None,
            shards: crate::cache::DEFAULT_SHARDS,
            batch_window_ms: 0,
            workers: 0,
            fsync: false,
            breaker_threshold: 3,
            breaker_cooldown_ms: 5_000,
            predict_sample_every: 4,
        }
    }
}

impl ServeConfig {
    /// Effective reactor worker-thread count (resolves the `0` default).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            self.max_running + self.max_queue + 4
        }
    }
}

// ---------------------------------------------------------------------------
// Admission gate.
// ---------------------------------------------------------------------------

struct GateState {
    running: usize,
    queued: usize,
}

/// Bounded running set plus bounded wait queue. Only cache-miss
/// computations pass through here — hits and stats are always served.
struct Gate {
    max_running: usize,
    max_queue: usize,
    state: Mutex<GateState>,
    cv: Condvar,
}

/// RAII running-set slot; dropping it wakes one queued waiter.
struct Permit<'a>(&'a Gate);

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        lock(&self.0.state).running -= 1;
        self.0.cv.notify_one();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl Gate {
    fn new(max_running: usize, max_queue: usize) -> Gate {
        Gate {
            max_running: max_running.max(1),
            max_queue,
            state: Mutex::new(GateState {
                running: 0,
                queued: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Claim a running slot, queueing if the running set is full.
    ///
    /// A queued waiter with a `deadline` is **shed** the moment the
    /// deadline passes: by the time the slot would free, the compute
    /// watchdog would kill the work anyway, so running it only wastes
    /// the slot. Since every waiter sheds at its own deadline, the work
    /// with the *oldest* deadline leaves the queue first — the queue
    /// drains from most-doomed to least under sustained overload.
    ///
    /// Returns `Err(AdmitError::Full(..))` when the queue itself is
    /// full (immediate, never waits), `Err(AdmitError::Shed)` when the
    /// deadline expired while queued.
    fn admit(&self, deadline: Option<Instant>) -> Result<Permit<'_>, AdmitError> {
        let mut s = lock(&self.state);
        if s.running >= self.max_running {
            if s.queued >= self.max_queue {
                return Err(AdmitError::Full {
                    running: s.running,
                    queued: s.queued,
                });
            }
            s.queued += 1;
            while s.running >= self.max_running {
                match deadline {
                    None => s = self.cv.wait(s).unwrap_or_else(|e| e.into_inner()),
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            s.queued -= 1;
                            // A slot may have freed in the same instant;
                            // pass the wake-up on rather than eat it.
                            self.cv.notify_one();
                            return Err(AdmitError::Shed);
                        }
                        s = self
                            .cv
                            .wait_timeout(s, d - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                }
            }
            s.queued -= 1;
        }
        s.running += 1;
        Ok(Permit(self))
    }

    fn depth(&self) -> (usize, usize) {
        let s = lock(&self.state);
        (s.running, s.queued)
    }
}

/// Why [`Gate::admit`] refused a slot.
#[derive(Debug, PartialEq, Eq)]
enum AdmitError {
    /// Running set and queue both full at arrival.
    Full { running: usize, queued: usize },
    /// The request's deadline expired while it waited in the queue.
    Shed,
}

// ---------------------------------------------------------------------------
// The service.
// ---------------------------------------------------------------------------

/// How the admission gate (or the breaker in front of it) disposed of a
/// flight that never computed. Travels through the single-flight table
/// so every rider of a rejected flight sees the same typed rejection.
#[derive(Debug, Clone)]
enum Gated {
    Overloaded {
        running: usize,
        queued: usize,
    },
    Draining,
    /// Deadline expired while queued for admission (load shedding).
    Shed,
    /// The config is circuit-broken after repeated deterministic
    /// failures; `retry_ms` is the remaining quarantine cooldown.
    Quarantined {
        retry_ms: u64,
    },
}

/// Everything a request touches, shared across connections.
pub struct Service {
    cfg: ServeConfig,
    store: TraceStore,
    cache: ResultCache,
    /// Client-facing flights: one admission-gate pass per flight, shared
    /// by every identical concurrent request.
    inflight: Inflight<Result<Record, Gated>>,
    /// Ungated flights for serial-baseline sub-requests. A separate
    /// table: a gated flight can block in the admission queue, and a
    /// permit-holding computation joining it there would deadlock.
    sub_inflight: Inflight<Record>,
    /// Compatible concurrent misses gather here into shared sweeps; one
    /// admission-gate pass and one pool per batch.
    batcher: Batcher<ResolvedSpec, StudyResult<Result<Record, Gated>>>,
    gate: Gate,
    /// Quarantines configs that keep failing after the pool's own
    /// retries — a deterministic crasher stops burning worker time.
    breaker: Breaker,
    draining: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    /// `simulate` requests that reached a cache lookup (hits, misses,
    /// and gated rejections alike — each books exactly one cache-tier
    /// counter). This is the server-side left arm of the conservation
    /// law `hits + misses == simulate_requests + baseline_fetches`,
    /// robust to client-side retries the client never reports.
    simulates: AtomicU64,
    computed: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_draining: AtomicU64,
    /// Queued computations shed because their deadline expired before a
    /// running slot freed.
    shed: AtomicU64,
    /// Serial-baseline sub-requests performed (each books exactly one
    /// cache-tier counter, like every client request — conservation).
    baseline_fetches: AtomicU64,
    /// Cold-miss compute latency in milliseconds, per kernel.
    latencies: Mutex<HashMap<String, Vec<f64>>>,
    /// Single-flight table for predicted-tier cold misses. Separate from
    /// the exact tables: predicted keys live in their own hash space and
    /// their flights never pass the admission gate (model evaluation is
    /// microseconds, gating it behind engine sweeps would invert the
    /// latency order the tier exists for).
    predict_inflight: Inflight<Record>,
    /// The sentinel prediction auditor: samples fresh predictions,
    /// re-runs them on the cycle engine, quarantines out-of-bound
    /// (kernel, config, class) pairs.
    auditor: PredictAuditor,
    /// Predicted-tier records computed (cold predictions, not hits).
    predicted_served: AtomicU64,
    /// Model-evaluation latency in milliseconds (predicted tier only;
    /// excludes the content-addressed profile extraction it amortizes).
    predict_latencies: Mutex<Vec<f64>>,
    /// The tune checkpoint journal (`tune.jsonl` beside the cache
    /// shards): every scored search cell lands here before the search
    /// moves on, so a killed tune resumes instead of restarting.
    tune_journal: paxsim_core::journal::Journal,
    /// Finished tune results, content-addressed by the normalized
    /// request's `ConfigHash` (its own key space: the hash grafts an
    /// `"op":"tune"` marker). In-memory only — durability comes from the
    /// cell journal, which replays a completed search at zero engine
    /// cost after a restart.
    tune_cache: Mutex<HashMap<u64, TuneResult>>,
    /// Single-flight table for tune searches. Like the predicted tier:
    /// its own table (a search takes seconds and must not block exact
    /// flights) and never batched — the search decides its own
    /// evaluation order.
    tune_inflight: Inflight<Result<TuneResult, Gated>>,
    /// `tune` requests that reached the tune-cache lookup.
    tunes: AtomicU64,
    /// Tune requests answered from the finished-result cache.
    tune_hits: AtomicU64,
    /// Searches that ran to completion this process.
    tune_completed: AtomicU64,
    /// Searches that replayed at least one journaled cell (resumes).
    tune_resumes: AtomicU64,
    /// Search cells replayed from the journal / freshly evaluated.
    tune_replayed: AtomicU64,
    tune_fresh: AtomicU64,
}

impl Service {
    /// Open the cache and stand the service up.
    ///
    /// # Errors
    ///
    /// Cache-journal I/O errors (unreadable directory, bad permissions).
    pub fn open(cfg: ServeConfig) -> StudyResult<Service> {
        // The daemon runs with observability on unless explicitly opted
        // out (PAXSIM_OBS=0): a `metrics` scrape against a fresh daemon
        // must work without extra environment plumbing. Replies are
        // cache-journal records either way, so determinism is untouched.
        if std::env::var_os("PAXSIM_OBS").is_none_or(|v| v != "0") {
            paxsim_obs::set_enabled(true);
        }
        let policy = if cfg.fsync {
            paxsim_core::journal::FsyncPolicy::Fsync
        } else {
            paxsim_core::journal::FsyncPolicy::Flush
        };
        let cache = ResultCache::open_with(&cfg.cache_dir, cfg.mem_cap, cfg.shards, policy)?;
        let tune_journal =
            paxsim_core::journal::Journal::open_with(&cfg.cache_dir.join("tune.jsonl"), policy)?;
        let gate = Gate::new(cfg.max_running, cfg.max_queue);
        let batcher = Batcher::new(Duration::from_millis(cfg.batch_window_ms));
        let breaker = Breaker::new(
            cfg.breaker_threshold,
            Duration::from_millis(cfg.breaker_cooldown_ms),
        );
        let auditor = PredictAuditor::new(cfg.predict_sample_every);
        Ok(Service {
            cfg,
            store: TraceStore::new(),
            cache,
            inflight: Inflight::new(),
            sub_inflight: Inflight::new(),
            batcher,
            gate,
            breaker,
            draining: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            simulates: AtomicU64::new(0),
            computed: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            rejected_draining: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            baseline_fetches: AtomicU64::new(0),
            latencies: Mutex::new(HashMap::new()),
            predict_inflight: Inflight::new(),
            auditor,
            predicted_served: AtomicU64::new(0),
            predict_latencies: Mutex::new(Vec::new()),
            tune_journal,
            tune_cache: Mutex::new(HashMap::new()),
            tune_inflight: Inflight::new(),
            tunes: AtomicU64::new(0),
            tune_hits: AtomicU64::new(0),
            tune_completed: AtomicU64::new(0),
            tune_resumes: AtomicU64::new(0),
            tune_replayed: AtomicU64::new(0),
            tune_fresh: AtomicU64::new(0),
        })
    }

    /// Handle one request line, returning one reply line (no trailing
    /// newline). Never panics on client input.
    pub fn handle_line(&self, line: &str) -> String {
        self.requests.fetch_add(1, Ordering::Relaxed);
        static REQUESTS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.requests");
        REQUESTS.inc();
        let _span = paxsim_obs::span!("serve.request");
        match protocol::parse_request(line) {
            Ok(Request::Stats) => self.stats_reply(),
            Ok(Request::Metrics) => self.metrics_reply(),
            Ok(Request::Health) => self.health_reply(),
            Ok(Request::Simulate {
                spec,
                deadline_ms,
                fidelity,
            }) => {
                let resolved = match spec.resolve() {
                    Ok(r) => r,
                    Err(e) => {
                        return protocol::render_error(protocol::error_category(&e), &e.to_string())
                    }
                };
                if fidelity == Fidelity::Exact {
                    // The default tier: the exact path, byte-identical to
                    // every release before the fidelity field existed.
                    match self.simulate(&resolved, deadline_ms) {
                        Ok(rec) => {
                            protocol::render_result(resolved.content_hash(), &resolved.spec, &rec)
                        }
                        Err(rej) => Self::render_rejection(rej),
                    }
                } else {
                    match self.simulate_predicted(&resolved, deadline_ms, fidelity) {
                        Ok(PredictOutcome::Predicted(rec)) => protocol::render_result_predicted(
                            resolved.content_hash_with_fidelity(Fidelity::Predicted),
                            &resolved.spec,
                            &rec,
                            fidelity,
                            &ErrorBounds::default(),
                        ),
                        // Quarantined pair (or a `fast` exact-cache hit):
                        // the reply is the exact tier's, byte for byte.
                        Ok(PredictOutcome::Exact(rec)) => {
                            protocol::render_result(resolved.content_hash(), &resolved.spec, &rec)
                        }
                        Err(rej) => Self::render_rejection(rej),
                    }
                }
            }
            Ok(Request::Tune { req, deadline_ms }) => match self.tune(&req, deadline_ms) {
                Ok((hash, normalized, result)) => protocol::render_tune(hash, &normalized, &result),
                Err(rej) => Self::render_rejection(rej),
            },
            Err(e) => protocol::render_error(protocol::error_category(&e), &e.to_string()),
        }
    }

    /// Render a typed rejection as its protocol error line.
    fn render_rejection(rej: Rejection) -> String {
        match rej {
            Rejection::Overloaded { running, queued } => protocol::render_error(
                "overloaded",
                &format!("{running} computations running, {queued} queued; try again"),
            ),
            Rejection::Draining => protocol::render_error("draining", "daemon is shutting down"),
            Rejection::Shed => protocol::render_error(
                "shed",
                "deadline expired while queued for admission; daemon under load",
            ),
            Rejection::Quarantined { retry_ms } => protocol::render_error(
                "quarantined",
                &format!(
                    "config is circuit-broken after repeated failures; \
                     retry in {retry_ms} ms"
                ),
            ),
            Rejection::Failed(e) => {
                protocol::render_error(protocol::error_category(&e), &e.to_string())
            }
        }
    }

    /// Reactor fast path: answer `line` inline **iff** it is a
    /// `simulate` request whose result is already cached. Anything else
    /// — a miss, `stats`/`metrics`, malformed input — returns `None`
    /// and must be dispatched to the worker pool as usual.
    ///
    /// Serving hits on the reactor thread skips the pool round trip
    /// (two context switches per request — on a loaded single-core host
    /// that is roughly half the wire cost of a hit). The reply is
    /// rendered by the same [`protocol::render_result`] call on the
    /// same cached record, so it is byte-identical to the worker path.
    ///
    /// Accounting matches [`Service::handle_line`] exactly: the request
    /// counter moves only when the request is actually answered here,
    /// and the cache probe books a hit counter on success and *nothing*
    /// on a miss — the worker path's own `get` will book that miss, so
    /// every simulate request still books exactly one tier counter.
    pub fn try_hit(&self, line: &str) -> Option<String> {
        let Ok(Request::Simulate { spec, fidelity, .. }) = protocol::parse_request(line) else {
            return None;
        };
        let resolved = spec.resolve().ok()?;
        // Which tier's cache answers inline, and how the hit renders.
        // Probing books a hit counter only on success (a probe miss
        // books nothing — the worker path's own `get` will), so even
        // the two-probe `fast` ladder books exactly one tier counter.
        let quarantined = fidelity != Fidelity::Exact
            && self.auditor.is_quarantined(PredictAuditor::pair_key(
                &resolved.spec.kernel,
                &resolved.spec.config,
                &resolved.spec.class,
            ));
        let reply = if fidelity == Fidelity::Exact || quarantined {
            let hash = resolved.content_hash();
            let rec = self.cache.probe(hash)?;
            if quarantined {
                self.auditor.record_fallback();
            }
            protocol::render_result(hash, &resolved.spec, &rec)
        } else {
            let exact_hit = if fidelity == Fidelity::Fast {
                let hash = resolved.content_hash();
                self.cache.probe(hash).map(|rec| (hash, rec))
            } else {
                None
            };
            match exact_hit {
                Some((hash, rec)) => protocol::render_result(hash, &resolved.spec, &rec),
                None => {
                    let hash = resolved.content_hash_with_fidelity(Fidelity::Predicted);
                    let rec = self.cache.probe(hash)?;
                    protocol::render_result_predicted(
                        hash,
                        &resolved.spec,
                        &rec,
                        fidelity,
                        &ErrorBounds::default(),
                    )
                }
            }
        };
        self.requests.fetch_add(1, Ordering::Relaxed);
        // The probe booked one hit counter, so this answered request
        // must count toward the conservation law's right-hand side.
        self.simulates.fetch_add(1, Ordering::Relaxed);
        static REQUESTS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.requests");
        static INLINE: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.inline_hits");
        REQUESTS.inc();
        INLINE.inc();
        let _span = paxsim_obs::span!("serve.request");
        Some(reply)
    }

    /// Serve one resolved simulation request: cache, then a coalesced
    /// flight whose *leader* passes the drain check and hands the miss to
    /// the batcher — identical concurrent requests cost one flight, and
    /// compatible distinct ones share a sweep and a gate permit.
    fn simulate(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> Result<Record, Rejection> {
        static LED: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.flight.led");
        static JOINED: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.flight.joined");
        let hash = resolved.content_hash();
        self.simulates.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.cache.get(hash) {
            return Ok(rec);
        }
        // The one cache-tier counter this request books moved above
        // (a miss); everything below must stay counter-neutral so the
        // conservation law `hits + misses == simulate requests +
        // baseline fetches` holds even when a flight is cancelled by
        // its deadline mid-coalesce.
        let (result, flight) = self.inflight.run(hash.0, || {
            let _span = paxsim_obs::span!("serve.flight", kernel = resolved.spec.kernel);
            // Double-check: a flight for this key may have landed (and
            // cached) between the lookup above and this slot claim. A
            // `peek`, not a `get` — this request already booked its miss.
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(Ok(rec));
            }
            if self.draining() {
                self.rejected_draining.fetch_add(1, Ordering::Relaxed);
                return Ok(Err(Gated::Draining));
            }
            // Breaker check sits after the cache: a quarantined config's
            // *cached* result (from before it went bad, or from a
            // successful probe) still serves — only fresh compute is
            // refused.
            if let Err(retry_ms) = self.breaker.check(hash.0) {
                static QUAR: paxsim_obs::LazyCounter =
                    paxsim_obs::LazyCounter::new("serve.breaker.rejected");
                QUAR.inc();
                return Ok(Err(Gated::Quarantined { retry_ms }));
            }
            let res = self.batched_compute(resolved, deadline_ms);
            match &res {
                Ok(Ok(_)) => self.breaker.success(hash.0),
                // Gate rejections say nothing about the config itself.
                Ok(Err(_)) => {}
                // Only failures that survived the pool's own retry
                // budget and look config-caused count toward a trip: a
                // panic or a failed trace build, not a deadline the
                // client chose.
                Err(StudyError::CellPanicked { .. }) | Err(StudyError::BuildFailed { .. }) => {
                    self.breaker.failure(hash.0);
                }
                Err(_) => {}
            }
            res
        });
        match flight {
            paxsim_core::inflight::Flight::Led => LED.inc(),
            paxsim_core::inflight::Flight::Joined => JOINED.inc(),
        }
        match result {
            Ok(Ok(rec)) => Ok(rec),
            Ok(Err(Gated::Overloaded { running, queued })) => {
                Err(Rejection::Overloaded { running, queued })
            }
            Ok(Err(Gated::Draining)) => Err(Rejection::Draining),
            Ok(Err(Gated::Shed)) => Err(Rejection::Shed),
            Ok(Err(Gated::Quarantined { retry_ms })) => Err(Rejection::Quarantined { retry_ms }),
            Err(e) => Err(Rejection::Failed(e)),
        }
    }

    /// Serve one resolved request at a non-exact fidelity.
    ///
    /// The predicted tier has its own key space
    /// ([`ResolvedSpec::content_hash_with_fidelity`]), its own
    /// single-flight table, and **no admission gate or batcher** —
    /// model evaluation is microseconds and must never queue behind
    /// engine sweeps. A quarantined (kernel, config, class) pair falls
    /// through to the full exact path and replies byte-identical to an
    /// exact-fidelity request; `fast` first probes the exact cache (a
    /// better answer at the same latency when one exists).
    fn simulate_predicted(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
        fidelity: Fidelity,
    ) -> Result<PredictOutcome, Rejection> {
        static FALLBACKS: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.predict.fallbacks");
        let pair = PredictAuditor::pair_key(
            &resolved.spec.kernel,
            &resolved.spec.config,
            &resolved.spec.class,
        );
        if self.auditor.is_quarantined(pair) {
            self.auditor.record_fallback();
            FALLBACKS.inc();
            // `simulate` books its own simulates + cache-tier counters.
            return self
                .simulate(resolved, deadline_ms)
                .map(PredictOutcome::Exact);
        }
        if fidelity == Fidelity::Fast {
            // An exact answer already in cache beats a prediction at the
            // same latency. A probe miss books nothing — the predicted
            // `get` below books this request's one tier counter.
            if let Some(rec) = self.cache.probe(resolved.content_hash()) {
                self.simulates.fetch_add(1, Ordering::Relaxed);
                return Ok(PredictOutcome::Exact(rec));
            }
        }
        let hash = resolved.content_hash_with_fidelity(Fidelity::Predicted);
        self.simulates.fetch_add(1, Ordering::Relaxed);
        if let Some(rec) = self.cache.get(hash) {
            return Ok(PredictOutcome::Predicted(rec));
        }
        let (result, _flight) = self.predict_inflight.run(hash.0, || {
            // Double-check under the flight slot; `peek` books nothing —
            // the `get` above already booked this request's miss.
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(rec);
            }
            let (sides, predicted) = self.predict_cell(resolved)?;
            let rec = self.cache.put(hash, sides)?;
            self.predicted_served.fetch_add(1, Ordering::Relaxed);
            static PREDICTED: paxsim_obs::LazyCounter =
                paxsim_obs::LazyCounter::new("serve.predict.served");
            PREDICTED.inc();
            // Leader-only sentinel audit: deterministically sampled,
            // synchronous (the client already paid a cold miss), and
            // accounted exactly like a serial-baseline sub-request so
            // the cache conservation law keeps holding.
            if self.auditor.should_audit(pair) {
                self.audit_prediction(resolved, pair, &predicted);
            }
            Ok(rec)
        });
        result
            .map(PredictOutcome::Predicted)
            .map_err(Rejection::Failed)
    }

    /// Evaluate the analytical model for one resolved spec: extract (or
    /// re-use, content-addressed) the reuse profile of the kernel's
    /// interned trace, map it through the configured hierarchy, and
    /// shape the outcome as a cache record — same `SideRecord` schema as
    /// the exact tier, so journals, caches and clients need no new code.
    fn predict_cell(&self, resolved: &ResolvedSpec) -> StudyResult<(Vec<SideRecord>, Predicted)> {
        let opts = resolved.options();
        let trace = self.store.try_get(TraceKey {
            kernel: resolved.kernel,
            class: resolved.class,
            nthreads: resolved.config.threads,
            schedule: resolved.schedule,
        })?;
        let profile = profile_program(&trace, opts.machine.l1d.line as u64);
        // The latency the <100 µs predicted-tier budget measures: model
        // evaluation alone. Profile extraction is content-addressed per
        // interned region and amortizes to zero across requests.
        let t0 = Instant::now();
        let mut predicted = predict_program(&profile, &opts.machine, &resolved.config.contexts);
        // Chaos hook: a `predict-bias` plan doubles the predicted wall
        // clock — far outside every declared bound — so tests can pin
        // the auditor's detect → quarantine → exact-fallback ladder.
        if paxsim_core::faultinject::predict_bias() {
            predicted.wall_cycles *= 2.0;
        }
        let elapsed = t0.elapsed().as_secs_f64();
        if paxsim_obs::enabled() {
            paxsim_obs::histogram_with(
                "serve.predict_seconds",
                &[("kernel", resolved.spec.kernel.as_str())],
            )
            .observe(elapsed);
        }
        lock(&self.predict_latencies).push(elapsed * 1e3);
        let speedup = if resolved.config.threads == 1 && resolved.config.group == 0 {
            1.0
        } else {
            // The predicted tier's speedup denominator is itself a
            // prediction: mixing a measured baseline into a predicted
            // ratio would make the error bound incoherent.
            let serial = resolved.serial_variant().resolve()?;
            let strace = self.store.try_get(TraceKey {
                kernel: serial.kernel,
                class: serial.class,
                nthreads: serial.config.threads,
                schedule: serial.schedule,
            })?;
            let sprofile = profile_program(&strace, opts.machine.l1d.line as u64);
            let spred = predict_program(&sprofile, &opts.machine, &serial.config.contexts);
            spred.wall_cycles / predicted.wall_cycles
        };
        let cycles = vec![predicted.wall_cycles; opts.trials];
        let speedups = vec![speedup; opts.trials];
        let sides = vec![SideRecord {
            bench: resolved.spec.kernel.clone(),
            cycles: Summary::of(&cycles),
            speedup: Summary::of(&speedups),
            counters: predicted.counters,
        }];
        Ok((sides, predicted))
    }

    /// Sentinel audit of one fresh prediction: fetch the exact answer
    /// (cache-or-compute, via the same ungated sub-request path as a
    /// serial baseline — it books `baseline_fetches` plus one cache-tier
    /// counter, so conservation holds), measure per-metric error,
    /// publish it, and let the auditor quarantine the pair if any
    /// declared bound is exceeded.
    fn audit_prediction(&self, resolved: &ResolvedSpec, pair: u64, predicted: &Predicted) {
        static AUDITS: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.predict.audits");
        static QUARANTINES: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.predict.quarantines");
        let _span = paxsim_obs::span!(
            "serve.predict.audit",
            kernel = resolved.spec.kernel,
            config = resolved.spec.config
        );
        AUDITS.inc();
        let Ok(exact) = self.fetch_baseline(resolved) else {
            // The engine refusing to produce a reference is its own
            // failure with its own path; the audit just stands down.
            return;
        };
        let exact_wall = exact.sides[0].cycles.mean;
        let wall_rel = if exact_wall > 0.0 {
            (predicted.wall_cycles - exact_wall).abs() / exact_wall
        } else {
            0.0
        };
        let c = &exact.sides[0].counters;
        let exact_l1 = if c.l1d_access > 0 {
            c.l1d_miss as f64 / c.l1d_access as f64
        } else {
            0.0
        };
        let errors = [
            MetricError {
                metric: "wall",
                relative: wall_rel,
                bound: predicted.bounds.wall,
            },
            MetricError {
                metric: "l1d_miss_rate",
                relative: (predicted.l1d_miss_rate - exact_l1).abs(),
                bound: predicted.bounds.miss_rate,
            },
        ];
        if paxsim_obs::enabled() {
            for e in &errors {
                paxsim_obs::histogram_with("serve.predict.error", &[("metric", e.metric)])
                    .observe(e.relative);
            }
        }
        if !self
            .auditor
            .record(pair, &resolved.spec.kernel, &resolved.spec.config, &errors)
        {
            QUARANTINES.inc();
        }
    }

    /// Serve one `tune` request: a budgeted configuration search over
    /// the request's grid.
    ///
    /// Same shape as every other tier — content-addressed cache (own
    /// key space: the tune hash grafts an `"op":"tune"` marker), own
    /// single-flight table, **never batched** — plus the full service
    /// envelope: drain check, circuit breaker keyed on the tune hash,
    /// and *one* admission-gate permit held across the whole search (a
    /// search is one long computation; re-gating each cell could
    /// deadlock a loaded daemon, exactly like the serial-baseline
    /// argument).
    ///
    /// Every scored cell journals through `tune.jsonl` before the
    /// search advances, and the budget is charged per scored cell
    /// whether fresh or replayed — so a tune killed mid-search resumes
    /// where it stopped and renders a byte-identical reply.
    ///
    /// Cell evaluation is deliberately **counter-neutral** on the
    /// conservation law (`peek`/`put` only, never `get`): tune requests
    /// don't book `simulate_requests`, so the law's two sides stay
    /// balanced no matter how many cells a search touches. (The serial
    /// baselines inside exact cells go through [`Service::fetch_baseline`],
    /// which books both sides equally.)
    #[allow(clippy::type_complexity)]
    fn tune(
        &self,
        req: &TuneRequest,
        deadline_ms: Option<u64>,
    ) -> Result<(paxsim_core::hash::ConfigHash, TuneRequest, TuneResult), Rejection> {
        static ROUNDS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.tune.rounds");
        static PRUNED: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.tune.pruned");
        static RESUMES: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.tune.resumes");
        static SEARCHES: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.tune.searches");
        static HITS: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.tune.hits");
        let plan = req.plan().map_err(Rejection::Failed)?;
        let hash = plan.content_hash();
        self.tunes.fetch_add(1, Ordering::Relaxed);
        if let Some(result) = lock(&self.tune_cache).get(&hash.0).cloned() {
            self.tune_hits.fetch_add(1, Ordering::Relaxed);
            HITS.inc();
            return Ok((hash, plan.request, result));
        }
        let (result, _flight) = self.tune_inflight.run(hash.0, || {
            let _span = paxsim_obs::span!("serve.tune", kernel = plan.request.kernel);
            // Double-check under the flight slot.
            if let Some(result) = lock(&self.tune_cache).get(&hash.0).cloned() {
                self.tune_hits.fetch_add(1, Ordering::Relaxed);
                HITS.inc();
                return Ok(Ok(result));
            }
            if self.draining() {
                self.rejected_draining.fetch_add(1, Ordering::Relaxed);
                return Ok(Err(Gated::Draining));
            }
            if let Err(retry_ms) = self.breaker.check(hash.0) {
                return Ok(Err(Gated::Quarantined { retry_ms }));
            }
            let effective_deadline_ms = deadline_ms.or(self.cfg.default_deadline_ms);
            let admitted = {
                let _span = paxsim_obs::span!("serve.admission");
                let admit_by =
                    effective_deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
                self.gate.admit(admit_by)
            };
            let _permit = match admitted {
                Ok(p) => p,
                Err(AdmitError::Full { running, queued }) => {
                    self.rejected_overload.fetch_add(1, Ordering::Relaxed);
                    return Ok(Err(Gated::Overloaded { running, queued }));
                }
                Err(AdmitError::Shed) => {
                    self.shed.fetch_add(1, Ordering::Relaxed);
                    return Ok(Err(Gated::Shed));
                }
            };
            SEARCHES.inc();
            let mut fresh_evals: u64 = 0;
            let res = tune::run(&plan, Some(&self.tune_journal), |spec, fidelity| {
                // Chaos hook: a `tune-abort` plan fails the search on the
                // matching fresh evaluation — after its predecessors are
                // already journaled — so the resume path is exercised
                // end to end.
                fresh_evals += 1;
                if paxsim_core::faultinject::tune_abort(fresh_evals) {
                    return Err(StudyError::CellPanicked {
                        index: fresh_evals as usize,
                        payload: "injected tune-abort fault".to_string(),
                    });
                }
                let resolved = spec.resolve()?;
                if fidelity == Fidelity::Exact {
                    self.tune_eval_exact(&resolved, effective_deadline_ms)
                } else {
                    self.tune_eval_predicted(&resolved)
                }
            });
            match &res {
                Ok(_) => self.breaker.success(hash.0),
                Err(StudyError::CellPanicked { .. }) | Err(StudyError::BuildFailed { .. }) => {
                    self.breaker.failure(hash.0);
                }
                Err(_) => {}
            }
            let (result, stats) = res?;
            self.tune_completed.fetch_add(1, Ordering::Relaxed);
            self.tune_fresh
                .fetch_add(stats.fresh as u64, Ordering::Relaxed);
            self.tune_replayed
                .fetch_add(stats.replayed as u64, Ordering::Relaxed);
            if stats.replayed > 0 {
                self.tune_resumes.fetch_add(1, Ordering::Relaxed);
                RESUMES.inc();
            }
            ROUNDS.add(result.rounds.len() as u64);
            PRUNED.add(result.rounds.iter().map(|r| r.pruned as u64).sum());
            if paxsim_obs::enabled() {
                paxsim_obs::gauge("serve.tune.best_speedup").set(result.speedup);
            }
            lock(&self.tune_cache).insert(hash.0, result.clone());
            Ok(Ok(result))
        });
        match result {
            Ok(Ok(result)) => Ok((hash, plan.request, result)),
            Ok(Err(Gated::Overloaded { running, queued })) => {
                Err(Rejection::Overloaded { running, queued })
            }
            Ok(Err(Gated::Draining)) => Err(Rejection::Draining),
            Ok(Err(Gated::Shed)) => Err(Rejection::Shed),
            Ok(Err(Gated::Quarantined { retry_ms })) => Err(Rejection::Quarantined { retry_ms }),
            Err(e) => Err(Rejection::Failed(e)),
        }
    }

    /// Exact-engine evaluation of one search cell: shared result cache
    /// first (`peek` — counter-neutral), then the ungated sub-request
    /// path (the search already holds the admission permit). Results
    /// land in the shared cache, so a later `simulate` of the winning
    /// config is a warm hit.
    fn tune_eval_exact(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Vec<SideRecord>> {
        let hash = resolved.content_hash();
        if let Some(rec) = self.cache.peek(hash) {
            return Ok(rec.sides);
        }
        let (result, _flight) = self.sub_inflight.run(hash.0, || {
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(rec);
            }
            self.compute_and_cache(resolved, deadline_ms)
        });
        result.map(|rec| rec.sides)
    }

    /// Predicted-tier evaluation of one search cell: shared predicted
    /// cache first (`peek`), then the model. No sentinel audit inside a
    /// search — the tier's error bounds are already fidelity-gated, and
    /// auditing every probe round would multiply the search cost by the
    /// exact engine's.
    fn tune_eval_predicted(&self, resolved: &ResolvedSpec) -> StudyResult<Vec<SideRecord>> {
        let hash = resolved.content_hash_with_fidelity(Fidelity::Predicted);
        if let Some(rec) = self.cache.peek(hash) {
            return Ok(rec.sides);
        }
        let (result, _flight) = self.predict_inflight.run(hash.0, || {
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(rec);
            }
            let (sides, _predicted) = self.predict_cell(resolved)?;
            self.cache.put(hash, sides)
        });
        result.map(|rec| rec.sides)
    }

    /// The batch-compatibility key: the canonical spec with the sweep
    /// coordinates (kernel, configuration) blanked, content-hashed, with
    /// the request deadline folded in. Two misses merge into one sweep
    /// exactly when they agree on class, trials, jitter, schedule, the
    /// full machine model, *and* deadline — so a merged batch runs under
    /// one [`CellPolicy`] that honors every member's deadline (they are
    /// all the same deadline).
    fn batch_key(resolved: &ResolvedSpec, deadline_ms: Option<u64>) -> u64 {
        let mut probe = resolved.spec.clone();
        probe.kernel = String::new();
        probe.config = String::new();
        let spec_hash = content_hash(&probe).0;
        fnv1a(format!("{spec_hash:016x}|{deadline_ms:?}").as_bytes())
    }

    /// Route one cache miss through the batcher. With a zero window this
    /// is a pass-through (immediate batch of one — byte-identical to the
    /// pre-batching path, which the differential test asserts).
    fn batched_compute(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Result<Record, Gated>> {
        static BATCHES: paxsim_obs::LazyCounter =
            paxsim_obs::LazyCounter::new("serve.batch.batches");
        static MERGED: paxsim_obs::LazyCounter = paxsim_obs::LazyCounter::new("serve.batch.merged");
        static SIZE: paxsim_obs::LazyHistogram = paxsim_obs::LazyHistogram::new("serve.batch.size");
        let key = Self::batch_key(resolved, deadline_ms);
        let (result, role) = self.batcher.submit(key, resolved.clone(), |items| {
            self.execute_batch(items, deadline_ms)
        });
        if let Role::Led { size } = role {
            BATCHES.inc();
            MERGED.add(size as u64 - 1);
            // The exponential seconds buckets (1e-6·4^i) double as base-4
            // *size* buckets under this scaling: bucket i covers batch
            // sizes up to 4^i.
            SIZE.observe(size as f64 * 1e-6);
        }
        result
    }

    /// Execute one gathered batch: one admission-gate pass, one shared
    /// sweep, one cache put per member. Results are positional (slot `i`
    /// answers the submitter of item `i`).
    ///
    /// **Equivalence:** each cell calls [`Service::compute_cell`] on its
    /// own resolved spec, exactly as an unbatched request would; cells
    /// share nothing but the scoped pool (and the caches/trace store they
    /// already shared across connections), and `compute_cell` is
    /// deterministic in its spec. Batching therefore changes only *when*
    /// and *beside whom* a computation runs — the record that lands in
    /// the cache, and the reply rendered from it, are byte-identical to
    /// the unbatched execution (DESIGN.md §13 states the full argument).
    fn execute_batch(
        &self,
        items: Vec<ResolvedSpec>,
        deadline_ms: Option<u64>,
    ) -> Vec<StudyResult<Result<Record, Gated>>> {
        // Chaos hook: a `serve-batch-panic` plan panics the leader here,
        // inside the batcher's catch_unwind — the poison-recovery path
        // (every rider re-runs solo) is what the regression test pins.
        if paxsim_core::faultinject::serve_batch_panic() {
            panic!("injected batch-leader fault ({} items)", items.len());
        }
        let effective_deadline_ms = deadline_ms.or(self.cfg.default_deadline_ms);
        let admitted = {
            let _span = paxsim_obs::span!("serve.admission");
            let admit_by =
                effective_deadline_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
            self.gate.admit(admit_by)
        };
        let _permit = match admitted {
            Ok(p) => p,
            Err(AdmitError::Full { running, queued }) => {
                self.rejected_overload
                    .fetch_add(items.len() as u64, Ordering::Relaxed);
                return items
                    .iter()
                    .map(|_| Ok(Err(Gated::Overloaded { running, queued })))
                    .collect();
            }
            Err(AdmitError::Shed) => {
                self.shed.fetch_add(items.len() as u64, Ordering::Relaxed);
                static SHED: paxsim_obs::LazyCounter =
                    paxsim_obs::LazyCounter::new("serve.admission.shed");
                SHED.inc();
                return items.iter().map(|_| Ok(Err(Gated::Shed))).collect();
            }
        };
        let policy = CellPolicy {
            deadline: effective_deadline_ms.map(Duration::from_millis),
            ..CellPolicy::default()
        };
        let sweep = pool::map_indexed_isolated(items.len(), &policy, |i| {
            let item = &items[i];
            let _span = paxsim_obs::span!(
                "serve.compute",
                kernel = item.spec.kernel,
                config = item.spec.config
            );
            let t0 = Instant::now();
            let sides = self.compute_cell(item)?;
            Ok((sides, t0.elapsed().as_secs_f64()))
        });
        sweep
            .results
            .into_iter()
            .zip(&items)
            .map(|(res, item)| {
                let (sides, elapsed) = res?;
                let rec = self.cache.put(item.content_hash(), sides)?;
                self.computed.fetch_add(1, Ordering::Relaxed);
                if paxsim_obs::enabled() {
                    paxsim_obs::histogram_with(
                        "serve.compute_seconds",
                        &[("kernel", item.spec.kernel.as_str())],
                    )
                    .observe(elapsed);
                }
                lock(&self.latencies)
                    .entry(item.spec.kernel.clone())
                    .or_default()
                    .push(elapsed * 1e3);
                Ok(Ok(rec))
            })
            .collect()
    }

    /// The serial-baseline sub-request: cache-or-compute with its own
    /// single-flight table and *no* admission gate — the parallel
    /// computation asking for it already owns a permit, and its budget
    /// covers the denominator.
    fn fetch_baseline(&self, resolved: &ResolvedSpec) -> StudyResult<Record> {
        self.baseline_fetches.fetch_add(1, Ordering::Relaxed);
        let hash = resolved.content_hash();
        if let Some(rec) = self.cache.get(hash) {
            return Ok(rec);
        }
        let (result, _flight) = self.sub_inflight.run(hash.0, || {
            // `peek`, not `get`: the fetch booked its one tier counter
            // in the lookup above (see the conservation note in
            // `simulate`).
            if let Some(rec) = self.cache.peek(hash) {
                return Ok(rec);
            }
            self.compute_and_cache(resolved, None)
        });
        result
    }

    /// Compute, store, and account one cold miss.
    fn compute_and_cache(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Record> {
        let _span = paxsim_obs::span!(
            "serve.compute",
            kernel = resolved.spec.kernel,
            config = resolved.spec.config
        );
        let t0 = Instant::now();
        let sides = self.compute(resolved, deadline_ms)?;
        let rec = self.cache.put(resolved.content_hash(), sides)?;
        self.computed.fetch_add(1, Ordering::Relaxed);
        let elapsed = t0.elapsed().as_secs_f64();
        if paxsim_obs::enabled() {
            paxsim_obs::histogram_with(
                "serve.compute_seconds",
                &[("kernel", resolved.spec.kernel.as_str())],
            )
            .observe(elapsed);
        }
        lock(&self.latencies)
            .entry(resolved.spec.kernel.clone())
            .or_default()
            .push(elapsed * 1e3);
        Ok(rec)
    }

    /// Run the simulation behind a one-cell fault-isolated sweep: a
    /// panicking engine cell (injected or real) is caught and retried
    /// with backoff instead of killing the connection thread, and the
    /// watchdog deadline turns a runaway cell into a typed `deadline`
    /// error.
    fn compute(
        &self,
        resolved: &ResolvedSpec,
        deadline_ms: Option<u64>,
    ) -> StudyResult<Vec<SideRecord>> {
        let policy = CellPolicy {
            deadline: deadline_ms
                .or(self.cfg.default_deadline_ms)
                .map(Duration::from_millis),
            ..CellPolicy::default()
        };
        let mut sweep = pool::map_indexed_isolated(1, &policy, |_| self.compute_cell(resolved));
        sweep.results.pop().expect("one-cell sweep has one result")
    }

    /// The actual simulation: trace build (shared store), trials, and —
    /// for parallel configurations — the serial-baseline sub-request that
    /// the speedup divides by.
    fn compute_cell(&self, resolved: &ResolvedSpec) -> StudyResult<Vec<SideRecord>> {
        let opts = resolved.options();
        let trace = self.store.try_get(TraceKey {
            kernel: resolved.kernel,
            class: resolved.class,
            nthreads: resolved.config.threads,
            schedule: resolved.schedule,
        })?;
        let (cycles, counters) = run_trials_with(&opts, &trace, &resolved.config, &|jobs| {
            simulate(&opts.machine, jobs)
        });
        let speedups: Vec<f64> = if resolved.config.threads == 1 && resolved.config.group == 0 {
            vec![1.0; opts.trials]
        } else {
            let serial = resolved.serial_variant().resolve()?;
            let base = self.fetch_baseline(&serial)?;
            let base_mean = base.sides[0].cycles.mean;
            cycles.iter().map(|&c| base_mean / c).collect()
        };
        Ok(vec![SideRecord {
            bench: resolved.spec.kernel.clone(),
            cycles: Summary::of(&cycles),
            speedup: Summary::of(&speedups),
            counters,
        }])
    }

    /// Render the `stats` reply.
    fn stats_reply(&self) -> String {
        let (running, queued) = self.gate.depth();
        let latency: Vec<(String, Value)> = {
            let lat = lock(&self.latencies);
            let mut kernels: Vec<&String> = lat.keys().collect();
            kernels.sort();
            kernels
                .into_iter()
                .map(|k| (k.clone(), Summary::of(&lat[k]).to_value()))
                .collect()
        };
        let obj = |entries: Vec<(&str, Value)>| {
            Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let v = obj(vec![
            ("ok", Value::Bool(true)),
            (
                "uptime_ms",
                Value::UInt(self.started.elapsed().as_millis() as u64),
            ),
            (
                "requests",
                Value::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "simulate_requests",
                Value::UInt(self.simulates.load(Ordering::Relaxed)),
            ),
            ("draining", Value::Bool(self.draining())),
            (
                "cache",
                obj(vec![
                    ("mem_hits", Value::UInt(self.cache.mem_hits())),
                    ("disk_hits", Value::UInt(self.cache.disk_hits())),
                    ("misses", Value::UInt(self.cache.misses())),
                    ("entries_mem", Value::UInt(self.cache.mem_len() as u64)),
                    ("entries_disk", Value::UInt(self.cache.disk_len() as u64)),
                    (
                        "corrupt_dropped",
                        Value::UInt(self.cache.corrupt_dropped() as u64),
                    ),
                    (
                        "shards",
                        Value::Array(
                            self.cache
                                .shard_stats()
                                .iter()
                                .map(|s| {
                                    obj(vec![
                                        ("mem_hits", Value::UInt(s.mem_hits)),
                                        ("disk_hits", Value::UInt(s.disk_hits)),
                                        ("misses", Value::UInt(s.misses)),
                                        ("puts", Value::UInt(s.puts)),
                                        ("entries_mem", Value::UInt(s.entries_mem as u64)),
                                        ("entries_disk", Value::UInt(s.entries_disk as u64)),
                                        ("corrupt_dropped", Value::UInt(s.corrupt_dropped as u64)),
                                        ("write_errors", Value::UInt(s.write_errors as u64)),
                                        ("stale_lines", Value::UInt(s.stale_lines as u64)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "batch",
                obj(vec![
                    ("window_ms", Value::UInt(self.cfg.batch_window_ms)),
                    ("batches", Value::UInt(self.batcher.batches())),
                    ("merged", Value::UInt(self.batcher.merged())),
                    ("poisoned", Value::UInt(self.batcher.poisoned())),
                    (
                        "open_groups",
                        Value::UInt(self.batcher.open_groups() as u64),
                    ),
                ]),
            ),
            (
                "degraded",
                obj(vec![
                    ("shed", Value::UInt(self.shed.load(Ordering::Relaxed))),
                    (
                        "quarantined_rejections",
                        Value::UInt(self.breaker.rejected()),
                    ),
                    ("breaker_trips", Value::UInt(self.breaker.trips())),
                    ("put_failures", Value::UInt(self.cache.put_failures())),
                    (
                        "journal_write_errors",
                        Value::UInt(self.cache.write_errors() as u64),
                    ),
                ]),
            ),
            (
                "inflight",
                obj(vec![
                    ("current", Value::UInt(self.inflight.in_flight() as u64)),
                    ("led", Value::UInt(self.inflight.led())),
                    ("joined", Value::UInt(self.inflight.joined())),
                ]),
            ),
            (
                "admission",
                obj(vec![
                    ("running", Value::UInt(running as u64)),
                    ("queued", Value::UInt(queued as u64)),
                    ("max_running", Value::UInt(self.cfg.max_running as u64)),
                    ("max_queue", Value::UInt(self.cfg.max_queue as u64)),
                    (
                        "rejected_overload",
                        Value::UInt(self.rejected_overload.load(Ordering::Relaxed)),
                    ),
                    (
                        "rejected_draining",
                        Value::UInt(self.rejected_draining.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "computed",
                Value::UInt(self.computed.load(Ordering::Relaxed)),
            ),
            (
                "baseline_fetches",
                Value::UInt(self.baseline_fetches.load(Ordering::Relaxed)),
            ),
            ("predict", self.predict_block()),
            (
                "tune",
                obj(vec![
                    ("requests", Value::UInt(self.tunes.load(Ordering::Relaxed))),
                    ("hits", Value::UInt(self.tune_hits.load(Ordering::Relaxed))),
                    (
                        "completed",
                        Value::UInt(self.tune_completed.load(Ordering::Relaxed)),
                    ),
                    (
                        "resumes",
                        Value::UInt(self.tune_resumes.load(Ordering::Relaxed)),
                    ),
                    (
                        "fresh_cells",
                        Value::UInt(self.tune_fresh.load(Ordering::Relaxed)),
                    ),
                    (
                        "replayed_cells",
                        Value::UInt(self.tune_replayed.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            ("traces_built", Value::UInt(self.store.builds())),
            ("latency_ms", Value::Object(latency)),
        ]);
        serde_json::to_string(&v).expect("value tree renders infallibly")
    }

    /// The predicted-tier status object shared by `stats` and `health`:
    /// volume, audit outcomes, quarantine state, and the auditor's
    /// measured p95 wall-clock error (absent until the first audit).
    fn predict_block(&self) -> Value {
        let mut entries = vec![
            (
                "served".to_string(),
                Value::UInt(self.predicted_served.load(Ordering::Relaxed)),
            ),
            (
                "audits".to_string(),
                Value::UInt(self.auditor.audits() as u64),
            ),
            (
                "quarantined_pairs".to_string(),
                Value::UInt(self.auditor.quarantined_pairs() as u64),
            ),
            (
                "fallbacks".to_string(),
                Value::UInt(self.auditor.fallbacks() as u64),
            ),
        ];
        {
            let lat = lock(&self.predict_latencies);
            if !lat.is_empty() {
                entries.push(("latency_ms".to_string(), Summary::of(&lat).to_value()));
            }
        }
        if let Some(p95) = self.auditor.error_p95() {
            entries.push(("error_p95".to_string(), Value::Float(p95)));
        }
        entries.push((
            "events".to_string(),
            Value::Array(self.auditor.events().iter().map(|e| e.to_value()).collect()),
        ));
        Value::Object(entries)
    }

    /// Render the `health` reply: liveness plus every degradation signal
    /// an orchestrator needs — drain status, admission pressure, breaker
    /// quarantine list, per-shard journal health. Cheap (no compute, no
    /// cache traffic) and safe to poll every second.
    fn health_reply(&self) -> String {
        let obj = |entries: Vec<(&str, Value)>| {
            Value::Object(
                entries
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            )
        };
        let (running, queued) = self.gate.depth();
        let quarantined: Vec<Value> = self
            .breaker
            .snapshot()
            .into_iter()
            .map(|q| {
                obj(vec![
                    ("hash", Value::String(format!("{:016x}", q.hash))),
                    ("failures", Value::UInt(u64::from(q.failures))),
                    ("state", Value::String(q.state.to_string())),
                    ("retry_in_ms", Value::UInt(q.retry_in_ms)),
                ])
            })
            .collect();
        let shards: Vec<Value> = self
            .cache
            .shard_stats()
            .iter()
            .map(|s| {
                obj(vec![
                    ("entries_mem", Value::UInt(s.entries_mem as u64)),
                    ("entries_disk", Value::UInt(s.entries_disk as u64)),
                    ("corrupt_dropped", Value::UInt(s.corrupt_dropped as u64)),
                    ("write_errors", Value::UInt(s.write_errors as u64)),
                    ("put_failures", Value::UInt(s.put_failures)),
                    ("stale_lines", Value::UInt(s.stale_lines as u64)),
                ])
            })
            .collect();
        let status = if self.draining() { "draining" } else { "ready" };
        let v = obj(vec![
            ("ok", Value::Bool(true)),
            ("status", Value::String(status.to_string())),
            (
                "uptime_ms",
                Value::UInt(self.started.elapsed().as_millis() as u64),
            ),
            ("workers", Value::UInt(self.cfg.effective_workers() as u64)),
            (
                "admission",
                obj(vec![
                    ("running", Value::UInt(running as u64)),
                    ("queued", Value::UInt(queued as u64)),
                    ("max_running", Value::UInt(self.cfg.max_running as u64)),
                    ("max_queue", Value::UInt(self.cfg.max_queue as u64)),
                    ("shed", Value::UInt(self.shed.load(Ordering::Relaxed))),
                    (
                        "rejected_overload",
                        Value::UInt(self.rejected_overload.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "breaker",
                obj(vec![
                    (
                        "threshold",
                        Value::UInt(u64::from(self.breaker.threshold())),
                    ),
                    ("cooldown_ms", Value::UInt(self.breaker.cooldown_ms())),
                    ("trips", Value::UInt(self.breaker.trips())),
                    ("rejected", Value::UInt(self.breaker.rejected())),
                    ("quarantined", Value::Array(quarantined)),
                ]),
            ),
            (
                "degraded",
                obj(vec![
                    ("put_failures", Value::UInt(self.cache.put_failures())),
                    (
                        "journal_write_errors",
                        Value::UInt(self.cache.write_errors() as u64),
                    ),
                    ("batch_poisoned", Value::UInt(self.batcher.poisoned())),
                ]),
            ),
            ("predict", self.predict_block()),
            ("shards", Value::Array(shards)),
        ]);
        serde_json::to_string(&v).expect("value tree renders infallibly")
    }

    /// Render the `metrics` reply: refresh the scrape-time gauges, then
    /// ship the registry snapshot as both Prometheus exposition text and
    /// structured JSON. Counters/histograms accumulate at their call
    /// sites; only point-in-time state is sampled here.
    fn metrics_reply(&self) -> String {
        if paxsim_obs::enabled() {
            let (running, queued) = self.gate.depth();
            paxsim_obs::gauge("serve.admission.running").set(running as f64);
            paxsim_obs::gauge("serve.admission.queued").set(queued as f64);
            paxsim_obs::gauge("serve.cache.entries_mem").set(self.cache.mem_len() as f64);
            paxsim_obs::gauge("serve.cache.entries_disk").set(self.cache.disk_len() as f64);
            paxsim_obs::gauge("serve.inflight.current").set(self.inflight.in_flight() as f64);
            paxsim_obs::gauge("serve.draining").set(f64::from(u8::from(self.draining())));
            paxsim_obs::gauge("serve.uptime_seconds").set(self.started.elapsed().as_secs_f64());
            paxsim_obs::gauge("serve.batch.open_groups").set(self.batcher.open_groups() as f64);
            paxsim_obs::gauge("serve.cache.shards").set(self.cache.shard_count() as f64);
            paxsim_obs::gauge("serve.predict.quarantined_pairs")
                .set(self.auditor.quarantined_pairs() as f64);
            if let Some(p95) = self.auditor.error_p95() {
                paxsim_obs::gauge("serve.predict_error_p95").set(p95);
            }
            for (i, s) in self.cache.shard_stats().iter().enumerate() {
                let shard = i.to_string();
                let labels: &[(&str, &str)] = &[("shard", shard.as_str())];
                paxsim_obs::gauge_with("serve.cache.shard.mem_hits", labels).set(s.mem_hits as f64);
                paxsim_obs::gauge_with("serve.cache.shard.disk_hits", labels)
                    .set(s.disk_hits as f64);
                paxsim_obs::gauge_with("serve.cache.shard.misses", labels).set(s.misses as f64);
                paxsim_obs::gauge_with("serve.cache.shard.entries_mem", labels)
                    .set(s.entries_mem as f64);
                paxsim_obs::gauge_with("serve.cache.shard.entries_disk", labels)
                    .set(s.entries_disk as f64);
            }
        }
        let snap = paxsim_obs::snapshot();
        let v = Value::Object(vec![
            ("ok".to_string(), Value::Bool(true)),
            ("enabled".to_string(), Value::Bool(paxsim_obs::enabled())),
            ("series".to_string(), Value::UInt(snap.series() as u64)),
            (
                "prometheus".to_string(),
                Value::String(snap.to_prometheus()),
            ),
            ("snapshot".to_string(), snap.to_json()),
        ]);
        serde_json::to_string(&v).expect("value tree renders infallibly")
    }

    /// Serial-baseline sub-requests performed.
    pub fn baseline_fetches(&self) -> u64 {
        self.baseline_fetches.load(Ordering::Relaxed)
    }

    /// `simulate` requests that reached a cache lookup (the server-side
    /// arm of the conservation law).
    pub fn simulate_requests(&self) -> u64 {
        self.simulates.load(Ordering::Relaxed)
    }

    /// Queued computations shed at deadline expiry.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// The per-config circuit breaker (trip/reject counters, snapshot).
    pub fn breaker(&self) -> &Breaker {
        &self.breaker
    }

    /// Batch groups poisoned by a leader panic (every rider recovered
    /// solo).
    pub fn batch_poisoned(&self) -> u64 {
        self.batcher.poisoned()
    }

    /// Stop admitting new computations (cache hits and stats still
    /// serve). The journal flushes per append, so no separate cache
    /// flush is needed.
    pub fn set_draining(&self) {
        self.draining.store(true, Ordering::SeqCst);
    }

    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Computations currently admitted (running or queued).
    pub fn busy(&self) -> usize {
        let (running, queued) = self.gate.depth();
        running + queued
    }

    /// Cold-miss computations performed.
    pub fn computed(&self) -> u64 {
        self.computed.load(Ordering::Relaxed)
    }

    /// The shared trace store (its `builds()` counter lets tests prove a
    /// cache hit did zero engine work).
    pub fn store(&self) -> &TraceStore {
        &self.store
    }

    /// The result cache (hit/miss counters).
    pub fn cache(&self) -> &ResultCache {
        &self.cache
    }

    /// The service configuration as opened.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Batches executed by the gather-window batcher.
    pub fn batches(&self) -> u64 {
        self.batcher.batches()
    }

    /// The sentinel prediction auditor (audit/quarantine/fallback
    /// counters and events).
    pub fn predict_auditor(&self) -> &PredictAuditor {
        &self.auditor
    }

    /// Predicted-tier records computed (cold predictions, not hits).
    pub fn predicted_served(&self) -> u64 {
        self.predicted_served.load(Ordering::Relaxed)
    }

    /// Model-evaluation latencies observed so far, in milliseconds.
    pub fn predict_latencies_ms(&self) -> Vec<f64> {
        lock(&self.predict_latencies).clone()
    }

    /// Requests that rode another request's batch (merge count).
    pub fn batch_merged(&self) -> u64 {
        self.batcher.merged()
    }

    /// Tune requests received (including cache hits and rejections).
    pub fn tunes(&self) -> u64 {
        self.tunes.load(Ordering::Relaxed)
    }

    /// Tune requests answered from the finished-search cache.
    pub fn tune_hits(&self) -> u64 {
        self.tune_hits.load(Ordering::Relaxed)
    }

    /// Tune searches run to completion.
    pub fn tune_completed(&self) -> u64 {
        self.tune_completed.load(Ordering::Relaxed)
    }

    /// Completed searches that replayed at least one journaled cell —
    /// i.e. resumed the work of an earlier (killed or failed) search.
    pub fn tune_resumes(&self) -> u64 {
        self.tune_resumes.load(Ordering::Relaxed)
    }
}

enum Rejection {
    Overloaded { running: usize, queued: usize },
    Draining,
    Shed,
    Quarantined { retry_ms: u64 },
    Failed(StudyError),
}

/// What a non-exact request was actually answered with: a record from
/// the predicted key space (rendered with `fidelity` + `error_bounds`
/// stamped on the reply) or an exact record (quarantine fallback, or a
/// `fast` request that found the exact answer cached) rendered
/// byte-identical to the exact tier.
enum PredictOutcome {
    Predicted(Record),
    Exact(Record),
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Barrier;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("paxsim_serve_service_tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn service(name: &str) -> Service {
        Service::open(ServeConfig {
            cache_dir: tmp(name),
            ..ServeConfig::default()
        })
        .unwrap()
    }

    const EP_CMP: &str = r#"{"op":"simulate","kernel":"ep","config":"CMP"}"#;

    #[test]
    fn miss_then_hit_is_byte_identical_with_no_new_engine_work() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("hit");
        let cold = s.handle_line(EP_CMP);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        let builds = s.store().builds();
        let computed = s.computed();
        let hot = s.handle_line(EP_CMP);
        assert_eq!(cold, hot, "cache hit must be byte-identical");
        assert_eq!(s.store().builds(), builds, "hit built no traces");
        assert_eq!(s.computed(), computed, "hit computed nothing");
        assert!(s.cache().hits() >= 1);
    }

    #[test]
    fn speedup_agrees_with_the_single_program_driver() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("parity");
        let reply = s.handle_line(EP_CMP);
        let v = serde_json::parse(&reply).unwrap();
        let served = v["result"]["sides"][0]["speedup"]["mean"].as_f64().unwrap();
        let opts = paxsim_core::study::StudyOptions::quick()
            .with_benchmarks(vec![paxsim_nas::KernelId::Ep]);
        let study =
            paxsim_core::single::run_single_program(&opts, &paxsim_core::store::TraceStore::new());
        let reference = study
            .cell(paxsim_nas::KernelId::Ep, "CMP")
            .unwrap()
            .speedup
            .mean;
        assert_eq!(served, reference, "serve path must match the driver");
    }

    #[test]
    fn serial_request_serves_unit_speedup_and_seeds_the_baseline() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("serial");
        let reply = s.handle_line(r#"{"op":"simulate","kernel":"ep","config":"Serial"}"#);
        let v = serde_json::parse(&reply).unwrap();
        assert_eq!(
            v["result"]["sides"][0]["speedup"]["mean"].as_f64(),
            Some(1.0)
        );
        // The parallel request's denominator is now a cache hit: exactly
        // one more computation happens, not two.
        let computed = s.computed();
        s.handle_line(EP_CMP);
        assert_eq!(s.computed(), computed + 1);
    }

    #[test]
    fn draining_refuses_misses_but_serves_hits_and_stats() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("drain");
        let cold = s.handle_line(EP_CMP);
        s.set_draining();
        let hit = s.handle_line(EP_CMP);
        assert_eq!(cold, hit, "hits still serve while draining");
        let miss = s.handle_line(r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#);
        assert!(miss.contains("\"error\":\"draining\""), "{miss}");
        let stats = s.handle_line(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"draining\":true"), "{stats}");
    }

    #[test]
    fn bad_requests_are_typed_not_fatal() {
        let s = service("bad");
        let r = s.handle_line(r#"{"op":"simulate","kernel":"zz","config":"CMP"}"#);
        assert!(r.contains("\"error\":\"bad-request\""), "{r}");
        assert!(r.contains("zz"), "{r}");
        let r = s.handle_line("garbage");
        assert!(r.contains("\"error\":\"bad-request\""), "{r}");
    }

    #[test]
    fn gate_admits_bounded_and_rejects_typed() {
        let g = Gate::new(1, 1);
        let p0 = g.admit(None).unwrap();
        // Running set full, queue empty: a queued waiter blocks, so test
        // the reject path by filling the queue from another thread that
        // never gets the slot until we drop p0.
        let gate = &g;
        let queued = Barrier::new(2);
        std::thread::scope(|scope| {
            let qref = &queued;
            let h = scope.spawn(move || {
                qref.wait();
                let _p = gate.admit(None).unwrap(); // queues, then runs
            });
            queued.wait();
            // Wait for the spawned thread to be *queued*.
            while gate.depth().1 == 0 {
                std::thread::yield_now();
            }
            assert_eq!(
                gate.admit(None).err(),
                Some(AdmitError::Full {
                    running: 1,
                    queued: 1
                }),
                "running and queue both full must reject"
            );
            drop(p0);
            h.join().unwrap();
        });
        assert_eq!(g.depth(), (0, 0), "permits all returned");
    }

    #[test]
    fn gate_sheds_expired_queued_waiters() {
        let g = Gate::new(1, 4);
        let p0 = g.admit(None).unwrap();
        // Queue behind the held slot with a deadline that expires while
        // waiting: the waiter must shed, not run, and its queue slot must
        // be released.
        let t0 = Instant::now();
        let shed = g.admit(Some(Instant::now() + Duration::from_millis(30)));
        assert_eq!(shed.err(), Some(AdmitError::Shed));
        assert!(
            t0.elapsed() >= Duration::from_millis(25),
            "shed must wait out the deadline, not reject eagerly"
        );
        assert_eq!(g.depth(), (1, 0), "shed waiter must leave the queue");
        // An already-expired deadline on a *free* gate still admits —
        // shedding applies to queue waits, not to work that can start
        // immediately.
        drop(p0);
        let p = g.admit(Some(Instant::now() - Duration::from_millis(1)));
        assert!(p.is_ok(), "free slot admits regardless of deadline");
    }

    #[test]
    fn repeated_panics_trip_the_breaker_into_typed_quarantine() {
        // cell-panic:0:50 panics every compute attempt. Each request
        // burns 1 + max_retries (= 3) attempts, fails post-retry, and
        // counts one breaker failure; at threshold 2 the third request
        // must be refused as `quarantined` without computing at all.
        paxsim_core::faultinject::with_plan("cell-panic:0:50", || {
            let s = Service::open(ServeConfig {
                cache_dir: tmp("breaker"),
                breaker_threshold: 2,
                breaker_cooldown_ms: 60_000,
                ..ServeConfig::default()
            })
            .unwrap();
            let r1 = s.handle_line(EP_CMP);
            assert!(r1.contains("\"error\":\"panic\""), "{r1}");
            let r2 = s.handle_line(EP_CMP);
            assert!(r2.contains("\"error\":\"panic\""), "{r2}");
            assert_eq!(s.breaker().trips(), 1, "tripped at threshold 2");
            let r3 = s.handle_line(EP_CMP);
            assert!(r3.contains("\"error\":\"quarantined\""), "{r3}");
            assert!(r3.contains("retry in"), "{r3}");
            assert_eq!(s.breaker().rejected(), 1);
            // Health must name the quarantined config.
            let h = s.handle_line(r#"{"op":"health"}"#);
            assert!(h.contains("\"quarantined\":[{"), "{h}");
            assert!(h.contains("\"state\":\"open\""), "{h}");
            // Conservation holds even with every path rejected:
            // 3 requests, 3 misses, 0 hits, 0 baselines.
            assert_eq!(
                s.cache().hits() + s.cache().misses(),
                s.simulate_requests() + s.baseline_fetches(),
            );
        });
    }

    #[test]
    fn breaker_probe_recovers_after_transient_poisoning() {
        // Two panic-failing requests trip a threshold-2 breaker; once the
        // budget is exhausted and the cooldown passes, the half-open
        // probe computes normally and the breaker closes.
        paxsim_core::faultinject::with_plan("cell-panic:0:6", || {
            let s = Service::open(ServeConfig {
                cache_dir: tmp("breaker_recover"),
                breaker_threshold: 2,
                breaker_cooldown_ms: 40,
                ..ServeConfig::default()
            })
            .unwrap();
            // 2 requests x 3 attempts = 6 panics: exactly the budget.
            assert!(s.handle_line(EP_CMP).contains("\"error\":\"panic\""));
            assert!(s.handle_line(EP_CMP).contains("\"error\":\"panic\""));
            assert_eq!(s.breaker().trips(), 1);
            std::thread::sleep(Duration::from_millis(60));
            let probe = s.handle_line(EP_CMP);
            assert!(probe.contains("\"ok\":true"), "{probe}");
            assert!(
                s.breaker().snapshot().is_empty(),
                "successful probe must close the breaker"
            );
        });
    }

    #[test]
    fn journal_fault_degrades_put_but_serves_byte_identical() {
        // Sized for the worst case: EP/CMP computes the parallel cell
        // plus its serial baseline — two puts. A budget of 2 fails both
        // appends; the replies must still be correct and the *hit* must
        // be byte-identical to the degraded miss reply.
        paxsim_core::faultinject::with_plan("journal-fail:2", || {
            let s = service("degraded");
            let cold = s.handle_line(EP_CMP);
            assert!(cold.contains("\"ok\":true"), "{cold}");
            assert!(s.cache().put_failures() >= 1, "put must have degraded");
            let hot = s.handle_line(EP_CMP);
            assert_eq!(cold, hot, "degraded record must serve byte-identical");
            let h = s.handle_line(r#"{"op":"health"}"#);
            let v = serde_json::parse(&h).unwrap();
            assert!(v["degraded"]["put_failures"].as_u64().unwrap() >= 1, "{h}");
            assert!(
                v["degraded"]["journal_write_errors"].as_u64().unwrap() >= 1,
                "{h}"
            );
        });
    }

    #[test]
    fn shard_slow_fault_delays_but_serves_identical_replies() {
        paxsim_core::faultinject::with_plan("serve-shard-slow:30:2", || {
            let s = service("shard_slow");
            let t0 = Instant::now();
            let cold = s.handle_line(EP_CMP);
            assert!(cold.contains("\"ok\":true"), "{cold}");
            assert!(
                t0.elapsed() >= Duration::from_millis(30),
                "the stall must actually happen"
            );
        });
        // The same request against a healthy service is byte-identical
        // modulo cache state — assert on a second, un-faulted service.
        let _quiet = paxsim_core::faultinject::quiesced();
        let slow_dir = std::env::temp_dir()
            .join("paxsim_serve_service_tests")
            .join("shard_slow");
        let s1 = Service::open(ServeConfig {
            cache_dir: slow_dir,
            ..ServeConfig::default()
        })
        .unwrap();
        let s2 = service("shard_slow_ref");
        assert_eq!(
            s1.handle_line(EP_CMP),
            s2.handle_line(EP_CMP),
            "a slow shard must never change reply bytes"
        );
    }

    #[test]
    fn injected_cell_panic_is_retried_not_fatal() {
        // One injected panic on the compute cell: the isolation layer
        // retries and the client still gets a result.
        paxsim_core::faultinject::with_plan("cell-panic:0:1", || {
            let s = service("fault");
            let r = s.handle_line(EP_CMP);
            assert!(r.contains("\"ok\":true"), "{r}");
        });
    }

    #[test]
    fn compatible_concurrent_misses_merge_into_one_batch() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = Service::open(ServeConfig {
            cache_dir: tmp("merge"),
            batch_window_ms: 120,
            ..ServeConfig::default()
        })
        .unwrap();
        // Same class/trials/schedule/machine/deadline, different sweep
        // coordinates: these must gather into one group.
        let lines = [
            EP_CMP,
            r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#,
            r#"{"op":"simulate","kernel":"is","config":"CMP"}"#,
        ];
        let gate = std::sync::Barrier::new(lines.len());
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .map(|line| {
                    let (s, gate) = (&s, &gate);
                    scope.spawn(move || {
                        gate.wait();
                        s.handle_line(line)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &replies {
            assert!(r.contains("\"ok\":true"), "{r}");
        }
        assert!(
            s.batch_merged() >= 1,
            "concurrent compatible misses must merge (merged = {}, batches = {})",
            s.batch_merged(),
            s.batches()
        );
        assert_eq!(
            s.computed(),
            6,
            "3 parallel kernels + 3 per-kernel serial baselines, once each"
        );
    }

    #[test]
    fn incompatible_requests_never_merge() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = Service::open(ServeConfig {
            cache_dir: tmp("nomerge"),
            batch_window_ms: 60,
            ..ServeConfig::default()
        })
        .unwrap();
        // Different trial counts → different batch keys.
        let lines = [
            r#"{"op":"simulate","kernel":"ep","config":"CMP","trials":1}"#,
            r#"{"op":"simulate","kernel":"cg","config":"CMP","trials":2}"#,
        ];
        let gate = std::sync::Barrier::new(lines.len());
        std::thread::scope(|scope| {
            for line in &lines {
                let (s, gate) = (&s, &gate);
                scope.spawn(move || {
                    gate.wait();
                    let r = s.handle_line(line);
                    assert!(r.contains("\"ok\":true"), "{r}");
                });
            }
        });
        assert_eq!(s.batch_merged(), 0, "incompatible specs must not merge");
    }

    #[test]
    fn batched_replies_are_byte_identical_to_unbatched() {
        // The batching equivalence argument, tested differentially: the
        // same request set served through a wide-open gather window
        // (merged sweep) and through a zero window (sequential batches of
        // one) must produce byte-identical reply lines.
        let _quiet = paxsim_core::faultinject::quiesced();
        let lines = [
            EP_CMP,
            r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#,
            r#"{"op":"simulate","kernel":"is","config":"CMP"}"#,
            r#"{"op":"simulate","kernel":"ep","config":"CMT"}"#,
        ];
        let plain = Service::open(ServeConfig {
            cache_dir: tmp("diff_plain"),
            batch_window_ms: 0,
            ..ServeConfig::default()
        })
        .unwrap();
        let unbatched: Vec<String> = lines.iter().map(|l| plain.handle_line(l)).collect();
        assert_eq!(plain.batch_merged(), 0);

        let batched_svc = Service::open(ServeConfig {
            cache_dir: tmp("diff_batched"),
            batch_window_ms: 150,
            ..ServeConfig::default()
        })
        .unwrap();
        let gate = std::sync::Barrier::new(lines.len());
        let batched: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = lines
                .iter()
                .map(|line| {
                    let (s, gate) = (&batched_svc, &gate);
                    scope.spawn(move || {
                        gate.wait();
                        s.handle_line(line)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            batched_svc.batch_merged() >= 1,
            "differential run must actually exercise a merged batch"
        );
        for (line, (b, u)) in lines.iter().zip(batched.iter().zip(&unbatched)) {
            assert!(b.contains("\"ok\":true"), "{b}");
            assert_eq!(b, u, "batched reply for {line} diverged from unbatched");
        }
    }

    const EP_CMP_PRED: &str =
        r#"{"op":"simulate","kernel":"ep","config":"CMP","fidelity":"predicted"}"#;

    #[test]
    fn predicted_tier_serves_caches_and_audits_in_bounds() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("predicted");
        let cold = s.handle_line(EP_CMP_PRED);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(cold.contains("\"fidelity\":\"predicted\""), "{cold}");
        assert!(cold.contains("\"error_bounds\""), "{cold}");
        assert_eq!(s.predicted_served(), 1);
        // The first prediction of a pair is always audited; EP is the
        // model's best-behaved kernel, so the audit must pass.
        assert_eq!(s.predict_auditor().audits(), 1);
        assert_eq!(s.predict_auditor().quarantined_pairs(), 0);
        assert!(s.predict_auditor().error_p95().is_some());
        // Hot predicted request: byte-identical, no new model eval.
        let hot = s.handle_line(EP_CMP_PRED);
        assert_eq!(cold, hot, "predicted cache hit must be byte-identical");
        assert_eq!(s.predicted_served(), 1);
        // Inline reactor fast path agrees byte for byte.
        assert_eq!(s.try_hit(EP_CMP_PRED).as_deref(), Some(hot.as_str()));
        // Conservation holds with the audit's baseline fetch counted.
        assert_eq!(
            s.cache().hits() + s.cache().misses(),
            s.simulate_requests() + s.baseline_fetches(),
        );
    }

    #[test]
    fn predicted_and_exact_answers_never_alias() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("pred_alias");
        let exact_before = s.handle_line(EP_CMP);
        let predicted = s.handle_line(EP_CMP_PRED);
        assert_ne!(exact_before, predicted, "tiers must answer differently");
        // The predicted record must not have displaced or poisoned the
        // exact one: the exact reply is still byte-identical.
        let exact_after = s.handle_line(EP_CMP);
        assert_eq!(exact_before, exact_after);
        // And `stats` reports the predicted tier.
        let stats = s.handle_line(r#"{"op":"stats"}"#);
        let v = serde_json::parse(&stats).unwrap();
        assert_eq!(v["predict"]["served"].as_u64(), Some(1), "{stats}");
        assert_eq!(v["predict"]["audits"].as_u64(), Some(1), "{stats}");
    }

    #[test]
    fn fast_fidelity_prefers_a_cached_exact_answer() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("fast_tier");
        let exact = s.handle_line(EP_CMP);
        let fast =
            s.handle_line(r#"{"op":"simulate","kernel":"ep","config":"CMP","fidelity":"fast"}"#);
        assert_eq!(exact, fast, "cached exact answer beats a prediction");
        assert_eq!(s.predicted_served(), 0, "no model eval happened");
        // Cold spec: fast falls through to the predicted tier.
        let fast_cold =
            s.handle_line(r#"{"op":"simulate","kernel":"cg","config":"CMP","fidelity":"fast"}"#);
        assert!(fast_cold.contains("\"fidelity\":\"fast\""), "{fast_cold}");
        assert_eq!(s.predicted_served(), 1);
        assert_eq!(
            s.cache().hits() + s.cache().misses(),
            s.simulate_requests() + s.baseline_fetches(),
        );
    }

    #[test]
    fn biased_predictor_is_quarantined_and_falls_back_byte_identical() {
        // Satellite regression: a `predict-bias` fault doubles predicted
        // wall clock — far outside the declared 25 % bound. The
        // always-audited first prediction must detect it, quarantine the
        // (kernel, config, class) pair, and every later non-exact request
        // for that pair must silently serve the exact tier, byte-identical
        // to a fault-free exact run.
        let reference = {
            let _quiet = paxsim_core::faultinject::quiesced();
            service("bias_ref").handle_line(EP_CMP)
        };
        paxsim_core::faultinject::with_plan("predict-bias", || {
            let s = service("bias");
            let biased = s.handle_line(EP_CMP_PRED);
            assert!(biased.contains("\"fidelity\":\"predicted\""), "{biased}");
            assert_eq!(s.predict_auditor().audits(), 1, "first prediction audited");
            assert_eq!(
                s.predict_auditor().quarantined_pairs(),
                1,
                "out-of-bound error must quarantine the pair"
            );
            assert!(!s.predict_auditor().events().is_empty());
            // Quarantined pair: the predicted request now serves exact,
            // byte-identical to the fault-free exact reply.
            let fallback = s.handle_line(EP_CMP_PRED);
            assert_eq!(fallback, reference, "fallback must be the exact tier");
            assert_eq!(s.predict_auditor().fallbacks(), 1);
            // The inline fast path honors the quarantine the same way.
            assert_eq!(s.try_hit(EP_CMP_PRED).as_deref(), Some(reference.as_str()));
            assert_eq!(s.predict_auditor().fallbacks(), 2);
            // Health names the quarantined pair's audit event.
            let h = s.handle_line(r#"{"op":"health"}"#);
            let v = serde_json::parse(&h).unwrap();
            assert_eq!(v["predict"]["quarantined_pairs"].as_u64(), Some(1), "{h}");
            assert_eq!(
                v["predict"]["events"][0]["metric"].as_str(),
                Some("wall"),
                "{h}"
            );
            assert_eq!(
                s.cache().hits() + s.cache().misses(),
                s.simulate_requests() + s.baseline_fetches(),
            );
        });
    }

    #[test]
    fn deadline_maps_to_typed_reply() {
        // A 1 ms deadline with an injected 60 ms stall: the watchdog
        // flags the cell and the client sees a `deadline` error.
        paxsim_core::faultinject::with_plan("cell-slow:0:60:1", || {
            let s = service("deadline");
            let r =
                s.handle_line(r#"{"op":"simulate","kernel":"ep","config":"CMP","deadline_ms":1}"#);
            assert!(r.contains("\"error\":\"deadline\""), "{r}");
        });
    }

    const EP_TUNE: &str =
        r#"{"op":"tune","kernel":"ep","configs":["CMP","CMT"],"schedules":["static"],"budget":16}"#;

    #[test]
    fn tune_matches_exhaustive_sweep_on_small_grid() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("tune_sweep");
        let reply = s.handle_line(EP_TUNE);
        let v = serde_json::parse(&reply).unwrap();
        assert_eq!(v["ok"].as_bool(), Some(true), "{reply}");
        let best = v["tune"]["best_config"].as_str().unwrap().to_string();
        let best_speedup = v["tune"]["speedup"].as_f64().unwrap();
        assert_eq!(v["tune"]["fidelity"].as_str(), Some("exact"), "{reply}");
        // Exhaustive sweep of the same grid through the exact tier: the
        // search's winner must be the sweep's argmax, with the same score.
        // Tune normalizes config aliases to canonical paper names, so the
        // sweep labels go through the same resolution.
        let canon = |cfg: &str| {
            paxsim_core::hash::StudySpec::new("ep", cfg)
                .resolve()
                .unwrap()
                .spec
                .config
        };
        let mut sweep: Vec<(String, f64)> = ["CMP", "CMT"]
            .iter()
            .map(|cfg| {
                let r = s.handle_line(&format!(
                    r#"{{"op":"simulate","kernel":"ep","config":"{cfg}"}}"#
                ));
                let v = serde_json::parse(&r).unwrap();
                (
                    canon(cfg),
                    v["result"]["sides"][0]["speedup"]["mean"].as_f64().unwrap(),
                )
            })
            .collect();
        sweep.sort_by(|a, b| paxsim_core::tune::nan_last_cmp(b.1, a.1));
        assert_eq!(best, sweep[0].0, "tune winner must match the sweep");
        assert_eq!(best_speedup, sweep[0].1, "same engine, same score");
        // Tune cells are counter-neutral: the conservation law holds with
        // only the two sweep simulates on the right-hand side.
        assert_eq!(
            s.cache().hits() + s.cache().misses(),
            s.simulate_requests() + s.baseline_fetches(),
        );
    }

    #[test]
    fn tune_repeat_is_cached_hit_never_batched_and_byte_identical() {
        let _quiet = paxsim_core::faultinject::quiesced();
        let s = service("tune_hit");
        let cold = s.handle_line(EP_TUNE);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        let computed = s.computed();
        let hot = s.handle_line(EP_TUNE);
        assert_eq!(cold, hot, "finished-search cache must be byte-identical");
        assert_eq!(s.computed(), computed, "hit recomputed nothing");
        assert_eq!((s.tunes(), s.tune_hits(), s.tune_completed()), (2, 1, 1));
        assert_eq!(s.batches(), 0, "tune must never ride the batcher");
        let stats = s.handle_line(r#"{"op":"stats"}"#);
        let v = serde_json::parse(&stats).unwrap();
        assert_eq!(v["tune"]["requests"].as_u64(), Some(2), "{stats}");
        assert_eq!(v["tune"]["hits"].as_u64(), Some(1), "{stats}");
        assert_eq!(
            v["simulate_requests"].as_u64(),
            Some(0),
            "tune books no simulate traffic: {stats}"
        );
    }

    #[test]
    fn tune_resumes_from_aborted_search_without_reevaluating_cells() {
        // A `tune-abort` fault kills the search on its second fresh
        // evaluation — after the first cell is journaled. The retry must
        // replay that cell from the journal (no second evaluation) and
        // render byte-for-byte what an uninterrupted service renders.
        let killed = paxsim_core::faultinject::with_plan("tune-abort:2:1", || {
            let s = service("tune_abort");
            let r = s.handle_line(EP_TUNE);
            assert!(r.contains("\"error\":\"panic\""), "{r}");
            assert!(r.contains("tune-abort"), "{r}");
            assert_eq!(s.tune_completed(), 0);
            s
        });
        let _quiet = paxsim_core::faultinject::quiesced();
        let resumed = killed.handle_line(EP_TUNE);
        assert!(resumed.contains("\"ok\":true"), "{resumed}");
        assert_eq!(killed.tune_completed(), 1);
        assert_eq!(killed.tune_resumes(), 1, "replayed cells mark a resume");
        let fresh = service("tune_fresh");
        let uninterrupted = fresh.handle_line(EP_TUNE);
        assert_eq!(
            resumed, uninterrupted,
            "resume must be invisible in the reply"
        );
        assert_eq!(fresh.tune_resumes(), 0, "nothing to replay on a cold run");
    }
}
