//! Wire-level fault-recovery tests: every fault the chaos layer can
//! inject gets a *named* test over a real [`Server`] on a real loopback
//! socket, proving the recovery contract — the reply a client ultimately
//! receives is byte-identical to what a fault-free run produces, and the
//! failure surface is typed, never a hang.
//!
//! The byte-identity discipline: run the faulted exchange inside
//! [`with_plan`], then (under [`quiesced`], so no plan can leak in)
//! compute the same request on a *fresh* service in a *fresh* cache
//! directory and require the two reply lines to be equal. Simulation is
//! deterministic and the wire rendering canonical, so any divergence —
//! a half-applied put, a retry that drifted, a corrupted record — shows
//! up as a byte diff.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use paxsim_core::faultinject::{quiesced, with_plan};
use paxsim_serve::{ServeConfig, Server, Service};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("paxsim_serve_chaos").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, cfg_mod: impl FnOnce(&mut ServeConfig)) -> (Arc<Service>, Server) {
    let mut cfg = ServeConfig {
        cache_dir: tmp(name),
        ..ServeConfig::default()
    };
    cfg_mod(&mut cfg);
    let service = Arc::new(Service::open(cfg).unwrap());
    let server = Server::start(service.clone(), Some("127.0.0.1:0"), None).unwrap();
    (service, server)
}

/// One round trip on a fresh connection; panics on any transport error.
fn roundtrip(server: &Server, line: &str) -> String {
    let stream = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.ends_with('\n'), "reply not terminated: {reply:?}");
    reply.trim_end().to_string()
}

/// A self-healing round trip: on EOF/reset before a full reply line,
/// reconnect and resend the same request (idempotent by content hash),
/// up to `retries` times. Returns (reply, heals).
fn healing_roundtrip(server: &Server, line: &str, retries: u32) -> (String, u32) {
    let mut heals = 0;
    loop {
        let attempt = || -> std::io::Result<Option<String>> {
            let stream = TcpStream::connect(server.tcp_addr().unwrap())?;
            stream.set_read_timeout(Some(Duration::from_secs(20)))?;
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            writer.write_all(line.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            let mut reply = String::new();
            let n = reader.read_line(&mut reply)?;
            if n == 0 || !reply.ends_with('\n') {
                return Ok(None); // killed mid-reply
            }
            Ok(Some(reply.trim_end().to_string()))
        };
        match attempt() {
            Ok(Some(reply)) => return (reply, heals),
            Ok(None) | Err(_) if heals < retries => heals += 1,
            Ok(None) => panic!("connection kept dying after {retries} heals"),
            Err(e) => panic!("transport error after {retries} heals: {e}"),
        }
    }
}

/// Fault-free reference reply for `line`: a fresh service over a fresh
/// cache directory, computed with fault injection quiesced.
fn reference_reply(name: &str, line: &str) -> String {
    let _quiet = quiesced();
    let (_service, server) = start(name, |_| {});
    let reply = roundtrip(&server, line);
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(server.shutdown(Duration::from_secs(10)));
    reply
}

const EP_CMP: &str = r#"{"op":"simulate","kernel":"ep","config":"CMP"}"#;

/// Connection reset: the reactor kills the connection carrying the
/// request's frame before the reply goes out. A self-healing client
/// reconnects, resends, and ends up with the byte-identical result.
#[test]
fn killed_connection_heals_by_reconnect_and_resend() {
    let (reply, heals) = with_plan("serve-conn-kill:1:1", || {
        let (_service, server) = start("conn_kill", |_| {});
        let out = healing_roundtrip(&server, EP_CMP, 5);
        assert!(server.shutdown(Duration::from_secs(10)));
        out
    });
    assert!(heals >= 1, "the kill must actually sever a connection");
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(
        reply,
        reference_reply("conn_kill_ref", EP_CMP),
        "healed reply must be byte-identical to a fault-free run"
    );
}

/// Outbound slow-loris: every reactor write pass is capped at one byte,
/// so the reply trickles out over thousands of passes — but arrives
/// intact and byte-identical.
#[test]
fn partial_write_trickle_delivers_the_intact_reply() {
    let hot = with_plan("serve-partial-write:100000", || {
        let (_service, server) = start("partial_write", |_| {});
        // Cold compute first (under the same plan: the trickle applies to
        // its reply too), then a cache hit; both must survive 1-byte
        // write passes.
        let cold = roundtrip(&server, EP_CMP);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        let hot = roundtrip(&server, EP_CMP);
        assert_eq!(cold, hot, "hit must match the miss byte for byte");
        assert!(server.shutdown(Duration::from_secs(10)));
        hot
    });
    assert_eq!(
        hot,
        reference_reply("partial_write_ref", EP_CMP),
        "trickled reply must be byte-identical to a fault-free run"
    );
}

/// Inbound slow-loris: a client that trickles its request one byte at a
/// time (with real delays) must still get a full reply — frame
/// reassembly buffers partial lines without stalling the reactor.
#[test]
fn slow_loris_client_request_is_reassembled() {
    // Computed first: `reference_reply` takes the same non-reentrant
    // quiesce lock this test body holds below.
    let reference = reference_reply("slow_loris_ref", EP_CMP);
    let _quiet = quiesced();
    let (_service, server) = start("slow_loris", |_| {});
    // A fast client on a second connection must not be held hostage by
    // the trickler (reactor threads never block on one peer).
    let fast = roundtrip(&server, r#"{"op":"stats"}"#);
    assert!(fast.contains("\"ok\":true"), "{fast}");
    let stream = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let payload = format!("{EP_CMP}\n");
    let t0 = Instant::now();
    for chunk in payload.as_bytes().chunks(7) {
        writer.write_all(chunk).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(
        t0.elapsed() >= Duration::from_millis(10),
        "the trickle must take real time to exercise reassembly"
    );
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(
        reply.trim_end(),
        reference,
        "trickled-in request must produce the byte-identical reply"
    );
    assert!(server.shutdown(Duration::from_secs(10)));
}

/// Compute-worker panic: the job panics before touching the request; the
/// worker catches it, retries once, and the client sees a normal ok
/// reply — byte-identical to a run where no worker ever panicked.
#[test]
fn worker_panic_is_retried_to_a_byte_identical_reply() {
    let reply = with_plan("serve-worker-panic:1:1", || {
        let (_service, server) = start("worker_panic", |_| {});
        // A fresh miss is dispatched to the worker pool (hits answer
        // inline from the reactor), so the panic lands on this job.
        let reply = roundtrip(&server, EP_CMP);
        assert!(server.shutdown(Duration::from_secs(10)));
        reply
    });
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(
        reply,
        reference_reply("worker_panic_ref", EP_CMP),
        "retried reply must be byte-identical to a fault-free run"
    );
}

/// Batch-leader panic over the wire: compatible concurrent requests ride
/// one gather window; the leader's sweep panics; every rider re-runs
/// solo and replies ok — byte-identical to fault-free runs.
#[test]
fn batch_leader_panic_reruns_riders_byte_identical() {
    let kernels = ["ep", "cg", "is"];
    let replies = with_plan("serve-batch-panic:1", || {
        let (service, server) = start("batch_panic", |cfg| {
            cfg.batch_window_ms = 100;
        });
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = kernels
                .iter()
                .map(|k| {
                    let server = &server;
                    let line = format!(r#"{{"op":"simulate","kernel":"{k}","config":"CMP"}}"#);
                    scope.spawn(move || roundtrip(server, &line))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            service.batch_poisoned() >= 1,
            "the leader fault must actually poison a batch"
        );
        assert!(server.shutdown(Duration::from_secs(10)));
        replies
    });
    for (k, r) in kernels.iter().zip(&replies) {
        assert!(r.contains("\"ok\":true"), "{k} rider must recover: {r}");
        let reference = reference_reply(
            &format!("batch_panic_ref_{k}"),
            &format!(r#"{{"op":"simulate","kernel":"{k}","config":"CMP"}}"#),
        );
        assert_eq!(r, &reference, "{k} recovered reply must be byte-identical");
    }
}

/// Journal write failure: the put degrades to the memory tier (counted,
/// never silent) and the reply is still byte-identical — less durable,
/// never wrong.
#[test]
fn journal_write_failure_serves_byte_identical_degraded() {
    let reply = with_plan("journal-fail:2", || {
        let (service, server) = start("journal_fail", |_| {});
        let reply = roundtrip(&server, EP_CMP);
        assert!(
            service.cache().put_failures() >= 1,
            "the degraded put must be counted"
        );
        assert!(server.shutdown(Duration::from_secs(10)));
        reply
    });
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(
        reply,
        reference_reply("journal_fail_ref", EP_CMP),
        "degraded reply must be byte-identical to a fault-free run"
    );
}

/// Artificial shard latency: lookups stall but nothing breaks — the
/// reply is late, typed-nothing, and byte-identical.
#[test]
fn shard_latency_delays_but_serves_byte_identical() {
    let (elapsed, reply) = with_plan("serve-shard-slow:40:2", || {
        let (_service, server) = start("shard_slow", |_| {});
        let t0 = Instant::now();
        let reply = roundtrip(&server, EP_CMP);
        let elapsed = t0.elapsed();
        assert!(server.shutdown(Duration::from_secs(10)));
        (elapsed, reply)
    });
    assert!(
        elapsed >= Duration::from_millis(40),
        "the latency fault must actually stall the lookup ({elapsed:?})"
    );
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert_eq!(
        reply,
        reference_reply("shard_slow_ref", EP_CMP),
        "delayed reply must be byte-identical to a fault-free run"
    );
}

/// Circuit breaker over the wire: a config that panics deterministically
/// trips the breaker after `threshold` failures; further requests get
/// the typed `quarantined` rejection (with a retry hint); after the
/// cooldown a probe request goes through and closes the breaker.
#[test]
fn breaker_quarantines_then_probe_recovers_over_the_wire() {
    // Budget 6 = exactly two failing requests (each burns the cell's
    // 1 + 2 retries); the post-cooldown probe then runs clean.
    with_plan("cell-panic:0:6", || {
        let (service, server) = start("breaker", |cfg| {
            cfg.breaker_threshold = 2;
            cfg.breaker_cooldown_ms = 200;
        });
        let line = r#"{"op":"simulate","kernel":"cg","config":"CMT"}"#;
        for i in 0..2 {
            let r = roundtrip(&server, line);
            assert!(r.contains("\"error\":\"panic\""), "failure {i}: {r}");
        }
        let quarantined = roundtrip(&server, line);
        assert!(
            quarantined.contains("\"error\":\"quarantined\""),
            "tripped breaker must reject typed: {quarantined}"
        );
        assert!(
            quarantined.contains("retry in"),
            "rejection must carry the retry hint: {quarantined}"
        );
        let health = roundtrip(&server, r#"{"op":"health"}"#);
        assert!(
            health.contains("\"state\":\"open\""),
            "health must show the open breaker: {health}"
        );
        std::thread::sleep(Duration::from_millis(250));
        let probed = roundtrip(&server, line);
        assert!(
            probed.contains("\"ok\":true"),
            "post-cooldown probe must recover: {probed}"
        );
        assert_eq!(
            service.breaker().snapshot().len(),
            0,
            "a successful probe must close the breaker"
        );
        assert!(server.shutdown(Duration::from_secs(10)));
    });
}

/// Load shedding over the wire: with one running slot held by a stalled
/// computation, a queued request whose deadline expires is shed with the
/// typed `shed` rejection instead of waiting forever.
#[test]
fn queued_request_past_deadline_is_shed_typed() {
    with_plan("cell-slow:0:400:1", || {
        let (service, server) = start("shed", |cfg| {
            cfg.max_running = 1;
            cfg.max_queue = 4;
        });
        let addr = server.tcp_addr().unwrap();
        let slow = std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            writer.write_all(EP_CMP.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
            writer.flush().unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            reply
        });
        let t0 = Instant::now();
        while service.busy() == 0 {
            assert!(
                t0.elapsed() < Duration::from_secs(5),
                "slow request never admitted"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        let shed = roundtrip(
            &server,
            r#"{"op":"simulate","kernel":"is","config":"CMT","deadline_ms":30}"#,
        );
        assert!(
            shed.contains("\"error\":\"shed\""),
            "expired queued request must be shed typed: {shed}"
        );
        assert!(service.shed() >= 1, "the shed counter must increment");
        let slow_reply = slow.join().unwrap();
        assert!(
            slow_reply.contains("\"ok\":true"),
            "the stalled request itself must still finish: {slow_reply}"
        );
        assert!(server.shutdown(Duration::from_secs(10)));
    });
}

/// The reply to a request that arrives while faults are live must never
/// be a half-written line: read the raw byte stream and require exactly
/// one well-formed JSON line per request, even under 1-byte write caps.
#[test]
fn faulted_replies_are_always_whole_lines() {
    with_plan("serve-partial-write:100000", || {
        let (_service, server) = start("whole_lines", |_| {});
        let stream = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        for _ in 0..3 {
            writer.write_all(EP_CMP.as_bytes()).unwrap();
            writer.write_all(b"\n").unwrap();
        }
        writer.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut replies = Vec::new();
        for _ in 0..3 {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.ends_with('\n'), "torn reply line: {line:?}");
            serde_json::parse(line.trim_end()).expect("every reply line parses as JSON");
            replies.push(line.trim_end().to_string());
        }
        assert_eq!(replies[1], replies[0], "hits must match the miss");
        assert_eq!(replies[2], replies[0], "hits must match the miss");
        // No trailing garbage after the last reply.
        drop(writer);
        let mut rest = Vec::new();
        reader
            .get_mut()
            .set_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let _ = reader.read_to_end(&mut rest);
        assert!(
            rest.is_empty() || rest.iter().all(|&b| b == b'\n'),
            "stray bytes after replies: {rest:?}"
        );
        assert!(server.shutdown(Duration::from_secs(10)));
    });
}
