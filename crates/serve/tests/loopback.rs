//! End-to-end loopback tests: a real [`Server`] on real sockets, driven
//! by concurrent TCP/Unix clients, proving the serving tentpole's
//! contracts — coalescing, byte-identical cache hits, typed overload +
//! graceful drain (replies flushed, threads joined, listener closed),
//! and corruption-triggered recompute against the sharded cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use paxsim_serve::{ServeConfig, Server, Service};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("paxsim_serve_loopback")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(name: &str, cfg_mod: impl FnOnce(&mut ServeConfig)) -> (Arc<Service>, Server) {
    let mut cfg = ServeConfig {
        cache_dir: tmp(name),
        ..ServeConfig::default()
    };
    cfg_mod(&mut cfg);
    let service = Arc::new(Service::open(cfg).unwrap());
    let server = Server::start(service.clone(), Some("127.0.0.1:0"), None).unwrap();
    (service, server)
}

struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.tcp_addr().unwrap()).unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Client {
            writer: stream,
            reader,
        }
    }

    fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).unwrap();
        self.writer.write_all(b"\n").unwrap();
        self.writer.flush().unwrap();
    }

    fn recv(&mut self) -> String {
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        assert!(reply.ends_with('\n'), "reply not terminated: {reply:?}");
        reply.trim_end().to_string()
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

fn wait_until(what: &str, deadline: Duration, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(t0.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

const EP_CMP: &str = r#"{"op":"simulate","kernel":"ep","config":"CMP"}"#;

#[test]
fn concurrent_identical_requests_compute_exactly_once() {
    let _quiet = paxsim_core::faultinject::quiesced();
    let (service, server) = start("coalesce", |_| {});
    let replies: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let server = &server;
                scope.spawn(move || Client::connect(server).roundtrip(EP_CMP))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for r in &replies {
        assert!(r.contains("\"ok\":true"), "{r}");
        assert_eq!(r, &replies[0], "coalesced replies must be identical");
    }
    // Exactly two computations happened: the request itself plus its
    // serial-baseline sub-request — once each, despite four clients.
    assert_eq!(service.computed(), 2);
    // Two distinct traces built (1-thread serial, 2-thread CMP).
    assert_eq!(service.store().builds(), 2);
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn cache_hit_is_byte_identical_and_does_no_engine_work() {
    let _quiet = paxsim_core::faultinject::quiesced();
    let (service, server) = start("hit", |_| {});
    let mut client = Client::connect(&server);
    let cold = client.roundtrip(EP_CMP);
    assert!(cold.contains("\"ok\":true"), "{cold}");
    let builds = service.store().builds();
    let computed = service.computed();
    let hot = client.roundtrip(EP_CMP);
    assert_eq!(cold, hot, "hit must be byte-identical to the cold miss");
    assert_eq!(service.store().builds(), builds, "hit built zero traces");
    assert_eq!(service.computed(), computed, "hit ran zero engine cells");
    assert!(service.cache().hits() >= 1, "hit counter must increment");
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn overload_rejects_typed_and_drain_finishes_in_flight() {
    // One running slot, zero queue slots; the first computation is
    // stalled 400 ms by an injected slow fault so the second distinct
    // request meets a full daemon.
    paxsim_core::faultinject::with_plan("cell-slow:0:400:1", || {
        let (service, server) = start("overload", |cfg| {
            cfg.max_running = 1;
            cfg.max_queue = 0;
        });
        let mut slow = Client::connect(&server);
        let mut fast = Client::connect(&server);
        let mut late = Client::connect(&server);
        slow.send(EP_CMP);
        wait_until("slow request admitted", Duration::from_secs(5), || {
            service.busy() > 0
        });
        let rejected = fast.roundtrip(r#"{"op":"simulate","kernel":"cg","config":"CMP"}"#);
        assert!(
            rejected.contains("\"error\":\"overloaded\""),
            "full daemon must reject typed: {rejected}"
        );
        // Drain while the slow computation is still in flight: it must
        // finish and reply; new misses must be refused.
        server.drain();
        let slow_reply = slow.recv();
        assert!(
            slow_reply.contains("\"ok\":true"),
            "in-flight work must finish during drain: {slow_reply}"
        );
        let refused = late.roundtrip(r#"{"op":"simulate","kernel":"is","config":"CMP"}"#);
        assert!(
            refused.contains("\"error\":\"draining\""),
            "draining daemon must refuse new work: {refused}"
        );
        let stats = late.roundtrip(r#"{"op":"stats"}"#);
        assert!(stats.contains("\"draining\":true"), "{stats}");
        assert!(stats.contains("\"rejected_overload\":1"), "{stats}");
        assert!(
            server.shutdown(Duration::from_secs(10)),
            "drain must reach quiescence"
        );
    });
}

#[test]
fn shutdown_joins_every_handler_and_flushes_in_flight_replies() {
    // Regression for the detached-handler bug: the PR-4 server spawned
    // reply threads it never joined, so shutdown could tear the process
    // down while a reply was still being written. Stall a computation,
    // shut down while it is mid-flight, and require that `shutdown`
    // (a) reports a clean drain and (b) returns only after the reply
    // bytes reached the socket — readable afterwards even though every
    // server thread is already joined.
    paxsim_core::faultinject::with_plan("cell-slow:0:300:1", || {
        let (service, server) = start("drain_join", |_| {});
        let mut client = Client::connect(&server);
        client.send(EP_CMP);
        wait_until("slow request admitted", Duration::from_secs(5), || {
            service.busy() > 0
        });
        assert!(
            server.shutdown(Duration::from_secs(10)),
            "shutdown must wait for the in-flight reply, not abandon it"
        );
        let reply = client.recv();
        assert!(
            reply.contains("\"ok\":true"),
            "reply flushed before the handlers were joined: {reply}"
        );
    });
}

#[test]
fn draining_closes_the_listener_to_new_connections() {
    let _quiet = paxsim_core::faultinject::quiesced();
    let (_service, server) = start("drain_refuse", |_| {});
    let addr = server.tcp_addr().unwrap();
    let mut established = Client::connect(&server);
    // One roundtrip proves the reactor *accepted* this connection (a
    // connect alone only reaches the OS backlog, which the drain below
    // resets along with the listener).
    assert!(established
        .roundtrip(r#"{"op":"stats"}"#)
        .contains("\"ok\":true"));
    server.drain();
    // The reactor drops its listener on the next pass; from then on the
    // OS refuses new connects outright instead of parking them in a
    // backlog nobody will accept.
    wait_until("listener closed", Duration::from_secs(5), || {
        TcpStream::connect(addr).is_err()
    });
    // Connections established before the drain keep serving.
    let stats = established.roundtrip(r#"{"op":"stats"}"#);
    assert!(stats.contains("\"draining\":true"), "{stats}");
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn bitflipped_disk_entry_is_recomputed_not_served() {
    let _quiet = paxsim_core::faultinject::quiesced();
    let dir = tmp("bitflip");
    // The parallel ep/CMP record lands in the shard its content hash
    // selects; corrupt that shard's journal, not a monolithic file.
    let hash = paxsim_core::hash::StudySpec::new("ep", "CMP")
        .resolve()
        .unwrap()
        .content_hash();
    let shard = paxsim_serve::cache::shard_index(hash, paxsim_serve::cache::DEFAULT_SHARDS);
    let journal = dir.join(paxsim_serve::cache::shard_file_name(shard));
    let cold = {
        let service = Arc::new(
            Service::open(ServeConfig {
                cache_dir: dir.clone(),
                ..ServeConfig::default()
            })
            .unwrap(),
        );
        let server = Server::start(service.clone(), Some("127.0.0.1:0"), None).unwrap();
        let cold = Client::connect(&server).roundtrip(EP_CMP);
        assert!(cold.contains("\"ok\":true"), "{cold}");
        assert!(server.shutdown(Duration::from_secs(10)));
        cold
    };
    // Corrupt the *parallel* record (the last journal line); the serial
    // baseline record stays intact.
    let data = std::fs::read(&journal).unwrap();
    let body = std::str::from_utf8(&data).unwrap().trim_end();
    let last_line_start = body.rfind('\n').map(|i| i + 1).unwrap_or(0);
    paxsim_core::faultinject::flip_bit(&journal, last_line_start as u64 + 40).unwrap();
    // Restart over the corrupted cache.
    let service = Arc::new(
        Service::open(ServeConfig {
            cache_dir: dir,
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    assert_eq!(
        service.cache().corrupt_dropped(),
        1,
        "CRC must catch the flipped bit"
    );
    let server = Server::start(service.clone(), Some("127.0.0.1:0"), None).unwrap();
    let recomputed = Client::connect(&server).roundtrip(EP_CMP);
    assert_eq!(
        recomputed, cold,
        "recomputed result must match the original, never the corrupt record"
    );
    assert_eq!(
        service.computed(),
        1,
        "exactly the corrupted cell recomputes"
    );
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn stats_counters_conserve_under_coalescing_and_deadline() {
    // Every cache lookup books exactly one tier counter, so
    // `hits + misses` must equal simulate requests plus serial-baseline
    // sub-fetches — even when four clients coalesce onto one flight
    // (riders re-check with the stats-neutral `peek`) and a watchdog
    // deadline cancels a computation mid-flight.
    paxsim_core::faultinject::with_plan("cell-slow:0:60:1", || {
        let (service, server) = start("conserve", |_| {});
        let mut client = Client::connect(&server);
        // One simulate request whose computation the watchdog cancels.
        let dead =
            client.roundtrip(r#"{"op":"simulate","kernel":"cg","config":"CMP","deadline_ms":1}"#);
        assert!(dead.contains("\"error\":\"deadline\""), "{dead}");
        // Four identical cold requests race onto a coalesced flight.
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let server = &server;
                    scope.spawn(move || Client::connect(server).roundtrip(EP_CMP))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in &replies {
            assert!(r.contains("\"ok\":true"), "{r}");
            assert_eq!(r, &replies[0], "coalesced replies must be identical");
        }
        // Two repeat requests served straight from cache.
        assert_eq!(client.roundtrip(EP_CMP), replies[0]);
        assert_eq!(client.roundtrip(EP_CMP), replies[0]);
        let simulate_requests = 1 + 4 + 2;
        // The cancelled cell's detached thread may still be mid-way
        // through its own baseline fetch; conservation re-converges the
        // moment both of its sides (fetch counter, cache lookup) settle.
        wait_until("counter conservation", Duration::from_secs(5), || {
            service.cache().hits() + service.cache().misses()
                == simulate_requests + service.baseline_fetches()
        });
        let stats = client.roundtrip(r#"{"op":"stats"}"#);
        let v = serde_json::parse(&stats).unwrap();
        let led = v["inflight"]["led"].as_u64().unwrap();
        let joined = v["inflight"]["joined"].as_u64().unwrap();
        // Flights: the deadline request led one; the four coalesced
        // requests account for at most four slots (a straggler that
        // arrives after the flight lands hits the cache instead) and at
        // least one leader — never more, or the double-check re-counted.
        assert!(led >= 2, "{stats}");
        assert!((2..=5).contains(&(led + joined)), "{stats}");
        assert!(v["baseline_fetches"].as_u64().unwrap() >= 1, "{stats}");
        assert!(service.cache().hits() >= 2, "repeats must hit: {stats}");
        assert!(server.shutdown(Duration::from_secs(10)));
    });
}

#[test]
fn injected_cell_panic_does_not_drop_other_clients() {
    paxsim_core::faultinject::with_plan("cell-panic:0:1", || {
        let (_service, server) = start("panic", |_| {});
        let kernels = ["ep", "cg", "is"];
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = kernels
                .iter()
                .map(|k| {
                    let server = &server;
                    let line =
                        format!(r#"{{"op":"simulate","kernel":"{k}","config":"HT on -2-1"}}"#);
                    scope.spawn(move || Client::connect(server).roundtrip(&line))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (k, r) in kernels.iter().zip(&replies) {
            assert!(
                r.contains("\"ok\":true"),
                "{k} client must survive the injected panic: {r}"
            );
        }
        assert!(server.shutdown(Duration::from_secs(10)));
    });
}

#[test]
fn batch_leader_panic_does_not_strand_followers() {
    // Regression: riders in a gather window park on the group's condvar
    // until the leader publishes a result. A leader whose sweep panicked
    // published *nothing*, so every follower hung until its client gave
    // up. The batcher now marks the group poisoned and each rider re-runs
    // its own request solo — three compatible concurrent requests through
    // a wide window with the leader's sweep shot down must all answer ok,
    // and the loopback replies must be byte-identical to fault-free runs.
    let kernels = ["ep", "cg", "is"];
    let line = |k: &str| format!(r#"{{"op":"simulate","kernel":"{k}","config":"CMP"}}"#);
    let faulted: Vec<String> = paxsim_core::faultinject::with_plan("serve-batch-panic:1", || {
        let (service, server) = start("batch_poison", |cfg| {
            cfg.batch_window_ms = 100;
        });
        let replies: Vec<String> = std::thread::scope(|scope| {
            let handles: Vec<_> = kernels
                .iter()
                .map(|k| {
                    let server = &server;
                    let line = line(k);
                    scope.spawn(move || Client::connect(server).roundtrip(&line))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(
            service.batch_poisoned() >= 1,
            "the injected leader panic must actually poison a batch"
        );
        assert!(server.shutdown(Duration::from_secs(10)));
        replies
    });
    let _quiet = paxsim_core::faultinject::quiesced();
    let (_service, server) = start("batch_poison_ref", |_| {});
    for (k, faulted_reply) in kernels.iter().zip(&faulted) {
        assert!(
            faulted_reply.contains("\"ok\":true"),
            "{k} rider must not be stranded: {faulted_reply}"
        );
        let clean = Client::connect(&server).roundtrip(&line(k));
        assert_eq!(
            faulted_reply, &clean,
            "{k} re-run reply must be byte-identical to a fault-free run"
        );
    }
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn health_endpoint_reports_readiness_shards_and_breaker() {
    let _quiet = paxsim_core::faultinject::quiesced();
    let (_service, server) = start("health", |_| {});
    let mut client = Client::connect(&server);
    let h = client.roundtrip(r#"{"op":"health"}"#);
    let v = serde_json::parse(&h).unwrap();
    assert_eq!(v["ok"].as_bool(), Some(true), "{h}");
    assert_eq!(v["status"].as_str(), Some("ready"), "{h}");
    assert!(v["uptime_ms"].as_u64().is_some(), "{h}");
    assert_eq!(
        v["breaker"]["trips"].as_u64(),
        Some(0),
        "fresh daemon has no breaker trips: {h}"
    );
    let shards = match &v["shards"] {
        serde::Value::Array(a) => a.len(),
        other => panic!("health.shards must be an array, got {other:?}"),
    };
    assert_eq!(
        shards,
        paxsim_serve::cache::DEFAULT_SHARDS,
        "one health entry per shard: {h}"
    );
    assert_eq!(v["degraded"]["put_failures"].as_u64(), Some(0), "{h}");
    // Draining flips the reported status while existing connections keep
    // being answered — exactly what an orchestrator's readiness probe
    // needs to take the instance out of rotation before the drain ends.
    server.drain();
    let h2 = client.roundtrip(r#"{"op":"health"}"#);
    let v2 = serde_json::parse(&h2).unwrap();
    assert_eq!(v2["status"].as_str(), Some("draining"), "{h2}");
    assert_eq!(v2["ok"].as_bool(), Some(true), "{h2}");
    assert!(server.shutdown(Duration::from_secs(10)));
}

#[test]
fn unix_socket_serves_the_same_protocol() {
    let _quiet = paxsim_core::faultinject::quiesced();
    let dir = tmp("unix");
    let sock = dir.join("serve.sock");
    std::fs::create_dir_all(&dir).unwrap();
    let service = Arc::new(
        Service::open(ServeConfig {
            cache_dir: dir.join("cache"),
            ..ServeConfig::default()
        })
        .unwrap(),
    );
    let server = Server::start(service.clone(), None, Some(&sock)).unwrap();
    let stream = std::os::unix::net::UnixStream::connect(&sock).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    writer.write_all(EP_CMP.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"ok\":true"), "{reply}");
    assert!(server.shutdown(Duration::from_secs(10)));
    assert!(!sock.exists(), "socket file removed on shutdown");
}
