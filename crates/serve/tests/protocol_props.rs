//! Protocol-hardening property tests: NDJSON framing and request parsing
//! over adversarial byte streams.
//!
//! The reactor feeds [`FrameBuffer`] whatever chunk boundaries the kernel
//! happens to return, so the framing layer's contract is *chunking
//! invariance*: the frame/error sequence a byte stream produces must not
//! depend on how it was sliced into reads. On top of that, malformed
//! input — garbage bytes, non-UTF-8, oversized lines, truncated JSON —
//! must come back as typed errors, never a panic and never a hang (every
//! property here drains the buffer to `None`, so an infinite loop would
//! time the test out rather than pass).

use proptest::prelude::*;

use paxsim_serve::frame::{FrameBuffer, FrameError, MAX_FRAME_BYTES};
use paxsim_serve::protocol::{self, Request};

const KERNELS: [&str; 8] = ["ep", "is", "cg", "mg", "ft", "bt", "sp", "lu"];
const CONFIGS: [&str; 5] = ["Serial", "CMP", "CMT", "HT off -4-2", "HT on -8-2"];

/// Drain every currently-complete frame.
fn drain(fb: &mut FrameBuffer) -> Vec<Result<String, FrameError>> {
    std::iter::from_fn(|| fb.next_frame()).collect()
}

/// One line of the adversarial stream: a valid request, ASCII garbage,
/// blank space, raw non-UTF-8 bytes, or an oversized run. Always
/// newline-terminated.
fn arb_line(limit: usize) -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        // Valid simulate request (well under any limit used here).
        ((0usize..KERNELS.len()), (0usize..CONFIGS.len())).prop_map(|(k, c)| {
            format!(
                r#"{{"op":"simulate","kernel":"{}","config":"{}"}}{}"#,
                KERNELS[k], CONFIGS[c], "\n"
            )
            .into_bytes()
        }),
        // ASCII garbage: parses as a frame, fails as a request.
        proptest::collection::vec(0x20u8..0x7f, 0..32).prop_map(|mut b| {
            b.push(b'\n');
            b
        }),
        // Whitespace-only (skipped by the framer).
        Just(b"   \n".to_vec()),
        Just(b"\n".to_vec()),
        // Raw bytes, possibly invalid UTF-8 (0x00..0xff, newline-free).
        proptest::collection::vec(0u8..=255, 1..24).prop_map(|mut b| {
            b.retain(|&x| x != b'\n');
            b.push(b'\n');
            b
        }),
        // Oversized: longer than the frame cap.
        ((limit + 1)..(3 * limit + 2)).prop_map(|n| {
            let mut b = vec![b'x'; n];
            b.push(b'\n');
            b
        }),
    ]
}

/// A stream of lines plus a random cut pattern for slicing it.
fn arb_stream(limit: usize) -> impl Strategy<Value = (Vec<u8>, Vec<usize>)> {
    (
        proptest::collection::vec(arb_line(limit), 1..8),
        proptest::collection::vec(1usize..40, 1..64),
    )
        .prop_map(|(lines, cuts)| (lines.concat(), cuts))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A rendered simulate request survives the frame layer and parses
    /// back to exactly the fields it was built from.
    #[test]
    fn valid_request_lines_round_trip(
        k in 0usize..KERNELS.len(),
        c in 0usize..CONFIGS.len(),
        trials in 1usize..5,
        jitter in 0u64..500,
        deadline in proptest::bool::ANY,
        fid in 0usize..4,
    ) {
        let mut line = format!(
            r#"{{"op":"simulate","kernel":"{}","config":"{}","trials":{trials},"jitter":{jitter}"#,
            KERNELS[k], CONFIGS[c]
        );
        if deadline {
            line.push_str(r#","deadline_ms":250"#);
        }
        // 3 = field absent (must default to exact); 0..3 = explicit tier.
        let fidelities = ["exact", "fast", "predicted"];
        if fid < 3 {
            line.push_str(&format!(r#","fidelity":"{}""#, fidelities[fid]));
        }
        line.push('}');

        let mut fb = FrameBuffer::default();
        fb.push(line.as_bytes());
        fb.push(b"\n");
        let framed = fb.next_frame().expect("complete frame").expect("clean frame");
        prop_assert_eq!(&framed, &line, "framing must not alter the line");
        prop_assert_eq!(fb.next_frame(), None);

        let Request::Simulate { spec, deadline_ms, fidelity } =
            protocol::parse_request(&framed).expect("valid request parses")
        else {
            panic!("simulate line parsed to the wrong op");
        };
        prop_assert_eq!(spec.kernel.as_str(), KERNELS[k]);
        prop_assert_eq!(spec.config.as_str(), CONFIGS[c]);
        prop_assert_eq!(spec.trials, trials);
        prop_assert_eq!(spec.jitter, jitter);
        prop_assert_eq!(deadline_ms, if deadline { Some(250) } else { None });
        let expect_fid = if fid < 3 { fidelities[fid] } else { "exact" };
        prop_assert_eq!(fidelity.wire(), expect_fid);
        // And the spec resolves: every kernel/config pair above is real.
        spec.resolve().expect("grid specs resolve");
    }

    /// The frame/error sequence is invariant under read-chunk slicing:
    /// byte-at-a-time, random cuts, and one-shot delivery all agree.
    #[test]
    fn frame_sequence_is_chunking_invariant(stream_and_cuts in arb_stream(64)) {
        let (stream, cuts) = stream_and_cuts;
        let limit = 64;
        // Reference: the whole stream in one push.
        let mut whole = FrameBuffer::new(limit);
        whole.push(&stream);
        let expect = drain(&mut whole);

        // Random cuts, draining after every chunk.
        let mut sliced = FrameBuffer::new(limit);
        let mut got = Vec::new();
        let mut pos = 0;
        let mut cut = cuts.iter().cycle();
        while pos < stream.len() {
            let n = (*cut.next().expect("cycle never ends")).min(stream.len() - pos);
            sliced.push(&stream[pos..pos + n]);
            pos += n;
            got.extend(drain(&mut sliced));
        }
        prop_assert_eq!(&got, &expect, "chunked delivery changed the frame sequence");

        // Byte-at-a-time.
        let mut single = FrameBuffer::new(limit);
        let mut got1 = Vec::new();
        for &b in &stream {
            single.push(&[b]);
            got1.extend(drain(&mut single));
        }
        prop_assert_eq!(&got1, &expect, "byte-at-a-time delivery changed the sequence");
    }

    /// Adversarial streams never panic the parse path, every framing
    /// failure is one of the two typed errors, and every parse failure
    /// maps into the protocol's closed error-category set.
    #[test]
    fn malformed_input_yields_typed_errors_never_panics(stream_and_cuts in arb_stream(64)) {
        let (stream, _) = stream_and_cuts;
        let mut fb = FrameBuffer::new(64);
        fb.push(&stream);
        for frame in drain(&mut fb) {
            match frame {
                Ok(line) => match protocol::parse_request(&line) {
                    // A lucky valid line from the generator — fine.
                    Ok(_) => {}
                    Err(e) => {
                        let category = protocol::error_category(&e);
                        prop_assert!(
                            ["bad-request", "internal"].contains(&category),
                            "unexpected category {category} for {line:?}"
                        );
                        // The reply renderer must also never panic on it.
                        let reply = protocol::render_error(category, &e.to_string());
                        prop_assert!(reply.contains("\"ok\":false"), "{reply}");
                    }
                },
                Err(e) => {
                    prop_assert!(matches!(
                        e,
                        FrameError::Oversized { limit: 64 } | FrameError::NotUtf8
                    ));
                    // detail() feeds the bad-request reply; must render.
                    let reply = protocol::render_error("bad-request", &e.detail());
                    prop_assert!(reply.contains("\"ok\":false"), "{reply}");
                }
            }
        }
        prop_assert_eq!(fb.next_frame(), None, "stream must drain, not loop");
    }

    /// An oversized line — however it is sliced — reports exactly one
    /// typed error and the connection resynchronizes on the next frame.
    #[test]
    fn oversized_lines_report_once_and_resync(
        n in 65usize..400,
        cut in 1usize..80,
    ) {
        let mut stream = vec![b'y'; n];
        stream.push(b'\n');
        stream.extend_from_slice(b"{\"op\":\"stats\"}\n");

        let mut fb = FrameBuffer::new(64);
        let mut got = Vec::new();
        for chunk in stream.chunks(cut) {
            fb.push(chunk);
            got.extend(drain(&mut fb));
        }
        prop_assert_eq!(
            got,
            vec![
                Err(FrameError::Oversized { limit: 64 }),
                Ok("{\"op\":\"stats\"}".to_string()),
            ]
        );
    }
}

/// The default cap itself: a line one byte over `MAX_FRAME_BYTES` is
/// refused by a default buffer, one at the cap passes. (Plain test — no
/// point generating megabyte strings 256 times.)
#[test]
fn default_cap_boundary() {
    let mut fb = FrameBuffer::default();
    let mut line = vec![b'z'; MAX_FRAME_BYTES];
    line.push(b'\n');
    fb.push(&line);
    assert!(matches!(fb.next_frame(), Some(Ok(_))), "at-cap line passes");

    let mut fb = FrameBuffer::default();
    let mut line = vec![b'z'; MAX_FRAME_BYTES + 1];
    line.push(b'\n');
    fb.push(&line);
    assert_eq!(
        fb.next_frame(),
        Some(Err(FrameError::Oversized {
            limit: MAX_FRAME_BYTES
        }))
    );
}
