//! Bring your own workload: write a kernel against the paxsim-omp runtime
//! and characterize it across the paper's hardware configurations.
//!
//! The example implements a 1-D red-black Gauss-Seidel smoother — real
//! numerics, verified against a native reference — traces it, and sweeps
//! every Table 1 configuration.
//!
//! ```sh
//! cargo run --release --example custom_kernel
//! ```

use std::sync::Arc;

use paxsim_core::prelude::*;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_machine::trace::ProgramTrace;
use paxsim_omp::prelude::*;
use paxsim_perfmon::table::Table;

const N: usize = 64 * 1024;
const SWEEPS: usize = 4;
const BB: u32 = 5000;

/// Native reference: red-black Gauss-Seidel for u'' = f on a ring.
fn reference(u: &mut [f64], f: &[f64]) {
    let n = u.len();
    for _ in 0..SWEEPS {
        for color in 0..2 {
            for i in (color..n).step_by(2) {
                let l = u[(i + n - 1) % n];
                let r = u[(i + 1) % n];
                u[i] = 0.5 * (l + r - f[i]);
            }
        }
    }
}

/// Traced version under the OpenMP-style runtime.
fn build(nthreads: usize) -> Arc<ProgramTrace> {
    let mut arena = Arena::new();
    let mut u = arena.alloc::<f64>("u", N);
    let mut f = arena.alloc::<f64>("f", N);
    for i in 0..N {
        f.set(i, ((i * 37) % 101) as f64 / 101.0 - 0.5);
    }

    let mut team = Team::new("redblack", nthreads);
    for _ in 0..SWEEPS {
        for color in 0..2u32 {
            team.parallel("rb.sweep", |p| {
                p.for_static(BB + color, 4, N / 2, |p, idx| {
                    let i = 2 * idx + color as usize;
                    let l = p.ld(&u, (i + N - 1) % N);
                    let r = p.ld(&u, (i + 1) % N);
                    let fv = p.ld(&f, i);
                    p.st(&mut u, i, 0.5 * (l + r - fv));
                    p.flops(3);
                });
            });
        }
    }

    // Verify against the native reference.
    let mut want = vec![0.0; N];
    let fs: Vec<f64> = (0..N).map(|i| f.get(i)).collect();
    reference(&mut want, &fs);
    for (i, &w) in want.iter().enumerate() {
        assert_eq!(u.get(i), w, "traced run diverged at {i}");
    }

    Arc::new(team.finish())
}

fn main() {
    let machine = paxsim_machine::config::MachineConfig::paxville_smp();
    let base = simulate(&machine, vec![JobSpec::pinned(build(1), serial().contexts)]).jobs[0].cycles
        as f64;

    let mut t = Table::new("Red-black smoother across Table 1 configurations").header([
        "Configuration",
        "Architecture",
        "Cycles",
        "Speedup",
        "CPI",
        "%stalled",
    ]);
    for cfg in parallel_configs() {
        let out = simulate(
            &machine,
            vec![JobSpec::pinned(build(cfg.threads), cfg.contexts.clone())],
        );
        let m = out.jobs[0].counters.metrics();
        t.row([
            cfg.name.clone(),
            cfg.arch.clone(),
            out.jobs[0].cycles.to_string(),
            format!("{:.2}", base / out.jobs[0].cycles as f64),
            format!("{:.2}", m.cpi),
            format!("{:.1}%", 100.0 * m.pct_stalled),
        ]);
    }
    println!("{t}");
}
