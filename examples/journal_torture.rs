//! SIGKILL-mid-write torture driver for the checkpoint journal.
//!
//! Two modes, wired together by `ci.sh`:
//!
//! ```text
//! journal_torture write <path>   append records k0, k1, k2, … forever
//! journal_torture check <path>   reopen and verify lossless-prefix recovery
//! ```
//!
//! CI starts `write`, SIGKILLs it mid-append, then runs `check`, which
//! asserts the crash-safety contract: at most one record (the in-flight
//! append) is corrupt, and the surviving keys form the exact contiguous
//! prefix k0..k(n-1) with bit-exact payloads — the journal never loses a
//! completed record and never serves a damaged one.

use paxsim_core::journal::{Journal, SideRecord};
use paxsim_core::study::Cell;
use paxsim_machine::counters::Counters;
use paxsim_perfmon::stats::Summary;
use std::path::Path;

fn sides_for(i: u64) -> Vec<SideRecord> {
    let cell = Cell {
        cycles: Summary::of(&[100.0 + i as f64]),
        speedup: Summary::of(&[1.5]),
        counters: Counters {
            instructions: 1_000 + i,
            ..Counters::default()
        },
    };
    vec![SideRecord::of("ep", &cell)]
}

fn write_forever(path: &Path) -> ! {
    let journal = Journal::open(path).expect("open journal for writing");
    let mut i = 0u64;
    loop {
        journal
            .record(&format!("k{i}"), sides_for(i))
            .expect("append");
        i += 1;
    }
}

fn check(path: &Path) {
    let journal = Journal::open(path).expect("reopen journal after kill");
    let n = journal.len() as u64;
    assert!(n > 0, "the writer must have landed at least one record");
    assert!(
        journal.corrupt_records() <= 1,
        "a single kill can tear at most the in-flight record, found {} corrupt",
        journal.corrupt_records()
    );
    for i in 0..n {
        let rec = journal
            .lookup(&format!("k{i}"))
            .unwrap_or_else(|| panic!("hole in prefix: k{i} missing with {n} records loaded"));
        assert_eq!(
            rec.sides[0].counters.instructions,
            1_000 + i,
            "record k{i} must reload bit-exact"
        );
    }
    println!(
        "journal torture check passed: lossless prefix k0..k{} ({} records, {} torn)",
        n - 1,
        n,
        journal.corrupt_records()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.as_slice() {
        [_, mode, path] if mode == "write" => write_forever(Path::new(path)),
        [_, mode, path] if mode == "check" => check(Path::new(path)),
        _ => {
            eprintln!("usage: journal_torture <write|check> <path>");
            std::process::exit(2);
        }
    }
}
