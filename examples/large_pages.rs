//! Large-page study: the follow-up question the paper's line of work went
//! on to ask ("Improving Scalability of OpenMP Applications on Multi-core
//! Systems Using Large Page Support") — answered on the simulator by
//! booting the machine model with 2 MB pages instead of 4 KB.
//!
//! The strided line solves of SP/BT walk one page per plane, so their DTLB
//! behaviour is the sensitive target.
//!
//! ```sh
//! cargo run --release --example large_pages
//! ```

use paxsim_core::prelude::*;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_nas::{Class, KernelId};
use paxsim_omp::schedule::Schedule;
use paxsim_perfmon::table::Table;

fn main() {
    let store = TraceStore::new();
    let small = paxsim_machine::config::MachineConfig::paxville_smp();
    let mut large = small.clone();
    large.page = 2 * 1024 * 1024;

    let mut t = Table::new("4 KB vs 2 MB pages (class T)").header([
        "Benchmark",
        "Config",
        "DTLB misses (4K)",
        "DTLB misses (2M)",
        "Cycles (4K)",
        "Cycles (2M)",
        "Speedup from large pages",
    ]);
    for bench in [KernelId::Sp, KernelId::Bt, KernelId::Cg] {
        for cfg_name in ["CMT", "CMT-based SMP"] {
            let cfg = config_by_name(cfg_name).unwrap();
            let trace = store.get(TraceKey {
                kernel: bench,
                class: Class::T,
                nthreads: cfg.threads,
                schedule: Schedule::Static,
            });
            let a = simulate(
                &small,
                vec![JobSpec::pinned(trace.clone(), cfg.contexts.clone())],
            );
            let b = simulate(&large, vec![JobSpec::pinned(trace, cfg.contexts.clone())]);
            t.row([
                bench.to_string(),
                cfg.name.clone(),
                a.jobs[0].counters.dtlb_miss().to_string(),
                b.jobs[0].counters.dtlb_miss().to_string(),
                a.jobs[0].cycles.to_string(),
                b.jobs[0].cycles.to_string(),
                format!(
                    "{:.1}%",
                    100.0 * (a.jobs[0].cycles as f64 / b.jobs[0].cycles as f64 - 1.0)
                ),
            ]);
        }
    }
    println!("{t}");
}
