//! Multi-program pairing (§4.2/§4.3 in miniature): which benchmark makes
//! the best co-runner for the memory-hungry CG on the fully loaded
//! CMT-based SMP (HT on -8-2)?
//!
//! Reproduces the paper's observation that complementary (compute + memory)
//! pairs beat homogeneous pairs.
//!
//! ```sh
//! cargo run --release --example multiprogram_pairing
//! ```

use paxsim_core::multi::run_workload;
use paxsim_core::prelude::*;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_nas::{all_kernels, Class, KernelId};
use paxsim_omp::schedule::Schedule;
use paxsim_perfmon::table::Table;

fn main() {
    let opts = StudyOptions::quick(); // class T, quiet, single trial
    let store = TraceStore::new();
    let cfg = config_by_name("CMT-based SMP").unwrap();

    // Serial baselines for speedups.
    let serial_cycles = |k: KernelId| -> f64 {
        let trace = store.get(TraceKey {
            kernel: k,
            class: Class::T,
            nthreads: 1,
            schedule: Schedule::Static,
        });
        simulate(
            &opts.machine,
            vec![JobSpec::pinned(trace, serial().contexts)],
        )
        .jobs[0]
            .cycles as f64
    };
    let cg_base = serial_cycles(KernelId::Cg);

    let mut t = Table::new("CG paired with each co-runner on HT on -8-2").header([
        "Co-runner",
        "CG speedup",
        "co-runner speedup",
        "pair harmonic mean",
    ]);
    let mut best: Option<(KernelId, f64)> = None;
    for co in all_kernels() {
        let co_base = serial_cycles(co);
        let cell = run_workload(&opts, &store, (KernelId::Cg, co), &cfg, (cg_base, co_base));
        let s_cg = cell.sides[0].cell.speedup.mean;
        let s_co = cell.sides[1].cell.speedup.mean;
        let hmean = 2.0 / (1.0 / s_cg + 1.0 / s_co);
        t.row([
            co.to_string(),
            format!("{s_cg:.2}"),
            format!("{s_co:.2}"),
            format!("{hmean:.2}"),
        ]);
        if best.as_ref().is_none_or(|&(_, b)| hmean > b) {
            best = Some((co, hmean));
        }
    }
    println!("{t}");
    let (winner, hmean) = best.unwrap();
    println!("best co-runner for cg: {winner} (harmonic-mean speedup {hmean:.2})");
}
