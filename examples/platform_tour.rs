//! Platform tour: reproduce the paper's Section 3 characterization and
//! poke at the machine model directly — latency curve, bandwidth scaling,
//! and what turning hardware features off does to a workload.
//!
//! ```sh
//! cargo run --release --example platform_tour
//! ```

use paxsim_core::prelude::*;
use paxsim_lmbench::{latency_sweep, read_bw_gbs, write_bw_gbs};
use paxsim_machine::config::MachineConfig;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_machine::topology::Lcpu;
use paxsim_nas::{Class, KernelId};
use paxsim_omp::schedule::Schedule;
use paxsim_perfmon::table::Table;

fn main() {
    let cfg = MachineConfig::paxville_smp();

    // lat_mem_rd-style latency curve.
    println!("lat_mem_rd (pointer chase):");
    let sizes = [
        4 * 1024,
        8 * 1024,
        16 * 1024, // L1 region (16 KB)
        64 * 1024,
        512 * 1024,
        2 * 1024 * 1024, // L2 region (2 MB)
        8 * 1024 * 1024,
        16 * 1024 * 1024, // DRAM
    ];
    for (bytes, ns) in latency_sweep(&cfg, &sizes) {
        println!("  {:>9} B : {ns:6.2} ns", bytes);
    }

    // Section 3 calibration table.
    println!();
    println!("{}", platform_text(&calibrate(&cfg)));

    // Bandwidth scaling with stream count.
    let mut t =
        Table::new("Stream bandwidth vs placement").header(["Streams", "Read GB/s", "Write GB/s"]);
    for (name, ctxs) in [
        ("1 (one core)", vec![Lcpu::B0]),
        ("2 (one chip)", vec![Lcpu::B0, Lcpu::B1]),
        ("2 (two chips)", vec![Lcpu::B0, Lcpu::B2]),
        (
            "4 (two chips)",
            vec![Lcpu::B0, Lcpu::B1, Lcpu::B2, Lcpu::B3],
        ),
    ] {
        t.row([
            name.to_string(),
            format!("{:.2}", read_bw_gbs(&cfg, &ctxs)),
            format!("{:.2}", write_bw_gbs(&cfg, &ctxs)),
        ]);
    }
    println!("{t}");

    // What-if: run MG with the hardware prefetcher disabled.
    let store = TraceStore::new();
    let trace = store.get(TraceKey {
        kernel: KernelId::Mg,
        class: Class::T,
        nthreads: 4,
        schedule: Schedule::Static,
    });
    let cmp_smp = config_by_name("CMP-based SMP").unwrap();
    let on = simulate(
        &cfg,
        vec![JobSpec::pinned(trace.clone(), cmp_smp.contexts.clone())],
    );
    let mut no_pf = cfg.clone();
    no_pf.prefetch = false;
    let off = simulate(
        &no_pf,
        vec![JobSpec::pinned(trace, cmp_smp.contexts.clone())],
    );
    println!(
        "MG on CMP-based SMP: prefetcher on = {} cycles, off = {} cycles ({:.1}% slower without it)",
        on.jobs[0].cycles,
        off.jobs[0].cycles,
        100.0 * (off.jobs[0].cycles as f64 / on.jobs[0].cycles as f64 - 1.0)
    );
}
