//! Quickstart: run one NAS benchmark on two hardware configurations and
//! compare what the paper's measurement methodology sees.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use paxsim_core::prelude::*;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_nas::{Class, KernelId};
use paxsim_omp::schedule::Schedule;

fn main() {
    // 1. Build (and verify) the benchmark once per thread count. The trace
    //    captures the program's architectural behaviour and replays on any
    //    hardware configuration.
    let store = TraceStore::new();
    let serial_trace = store.get(TraceKey {
        kernel: KernelId::Cg,
        class: Class::T,
        nthreads: 1,
        schedule: Schedule::Static,
    });
    let par_trace = store.get(TraceKey {
        kernel: KernelId::Cg,
        class: Class::T,
        nthreads: 4,
        schedule: Schedule::Static,
    });
    println!(
        "built cg: {} regions, {} ops, {} instructions",
        par_trace.regions.len(),
        par_trace.total_ops(),
        par_trace.instructions()
    );

    // 2. Simulate on the paper's machine: serial baseline, then the CMT
    //    configuration (one dual-core chip with Hyper-Threading).
    let machine = paxsim_machine::config::MachineConfig::paxville_smp();
    let serial_cfg = serial();
    let cmt = config_by_name("CMT").expect("Table 1 architecture");

    let base = simulate(
        &machine,
        vec![JobSpec::pinned(serial_trace, serial_cfg.contexts.clone())],
    );
    let run = simulate(
        &machine,
        vec![JobSpec::pinned(par_trace, cmt.contexts.clone())],
    );

    // 3. Report what VTune would have shown.
    let speedup = base.jobs[0].cycles as f64 / run.jobs[0].cycles as f64;
    println!(
        "serial: {} cycles   {} ({} = {}): {} cycles   speedup {speedup:.2}",
        base.jobs[0].cycles,
        cmt.name,
        cmt.arch,
        cmt.context_labels().join(","),
        run.jobs[0].cycles,
    );
    let m = run.jobs[0].counters.metrics();
    println!(
        "CMT counters: CPI {:.2}  L1 miss {:.1}%  L2 miss {:.1}%  TC miss {:.2}%  \
         branch pred {:.1}%  stalled {:.1}%  prefetch-bus {:.1}%",
        m.cpi,
        100.0 * m.l1_miss_rate,
        100.0 * m.l2_miss_rate,
        100.0 * m.tc_miss_rate,
        100.0 * m.branch_prediction_rate,
        100.0 * m.pct_stalled,
        100.0 * m.pct_prefetch_bus,
    );
    assert!(speedup > 1.0, "CMT should beat serial on CG");
}
