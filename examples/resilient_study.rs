//! Resilient paper regeneration with checkpoint/resume.
//!
//! ```sh
//! cargo run --release --example resilient_study -- /tmp/study.jsonl /tmp/study.report
//! ```
//!
//! Runs the §4.1 single-program and §4.2 multi-program studies through
//! the resilient drivers, journaling every completed cell to the given
//! path and writing the paper-style report to the given file. Kill the
//! process mid-sweep and run it again with the same journal: completed
//! cells are served from the journal (the partial record a kill leaves
//! behind is rejected by its CRC and recomputed) and the final report is
//! byte-identical to an uninterrupted run — `ci.sh` proves exactly that
//! with a SIGKILL smoke test.
//!
//! The resilience summary (resumed cells, corrupt records, retries,
//! drift events) goes to stdout only; the report file holds nothing but
//! study results, so two runs of the same study always compare equal.
//!
//! Set `PAXSIM_FAULTS` (see `paxsim_core::faultinject`) to watch the
//! recovery paths fire on a real sweep.

use paxsim_core::prelude::*;
use paxsim_core::report::{multi_to_json, single_to_json};
use paxsim_nas::Class;

fn main() {
    paxsim_core::faultinject::init_from_env();
    let mut args = std::env::args().skip(1);
    let (Some(journal), Some(report)) = (args.next(), args.next()) else {
        eprintln!("usage: resilient_study <journal-path> <report-path>");
        std::process::exit(2);
    };

    let opts = StudyOptions::paper(Class::T);
    let store = TraceStore::new();
    let ropts = ResilienceOptions::default().with_journal(&journal);

    let single = run_single_program_resilient(&opts, &store, &ropts)
        .unwrap_or_else(|e| panic!("single-program study: {e}"));
    let multi = run_multi_program_resilient(&opts, &store, &paper_workloads(), &ropts)
        .unwrap_or_else(|e| panic!("multi-program study: {e}"));

    let mut out = String::new();
    out.push_str(&fig2_text(&single.study));
    out.push_str(&fig3_text(&single.study));
    out.push_str(&table2_text(&single.study));
    out.push_str(&headlines_text(&headlines(&single.study)));
    out.push_str(&fig4_text(&multi.study));
    let single_json =
        single_to_json(&single.study).unwrap_or_else(|e| panic!("single-program report: {e}"));
    let multi_json =
        multi_to_json(&multi.study).unwrap_or_else(|e| panic!("multi-program report: {e}"));
    out.push_str(&serde_json::to_string(&single_json).expect("single json"));
    out.push('\n');
    out.push_str(&serde_json::to_string(&multi_json).expect("multi json"));
    out.push('\n');
    if let Err(e) = std::fs::write(&report, &out) {
        panic!("writing report to {report}: {e}");
    }

    println!("report: {report} ({} bytes)", out.len());
    println!("{}", resilience_text(&single.resilience));
    println!("{}", resilience_text(&multi.resilience));
    if !single.resilience.is_clean() || !multi.resilience.is_clean() {
        // Degraded but complete: poisoned cells are visible above.
        std::process::exit(1);
    }
}
