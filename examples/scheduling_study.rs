//! Scheduling study: the paper's future-work direction — "we are currently
//! experimenting with other schedulers" — explored on the simulator.
//!
//! Compares OpenMP worksharing schedules (static, chunked, dynamic, guided)
//! for an imbalanced workload (CG's rows have random lengths) across the
//! fully loaded configurations, and compares thread-placement policies for
//! a multi-program workload.
//!
//! ```sh
//! cargo run --release --example scheduling_study
//! ```

use paxsim_core::prelude::*;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_nas::{Class, KernelId};
use paxsim_omp::os::{split_jobs, PlacementPolicy};
use paxsim_omp::schedule::Schedule;
use paxsim_perfmon::table::Table;

fn main() {
    let machine = paxsim_machine::config::MachineConfig::paxville_smp();
    let store = TraceStore::new();

    // Serial baseline for speedups.
    let serial_trace = store.get(TraceKey {
        kernel: KernelId::Cg,
        class: Class::T,
        nthreads: 1,
        schedule: Schedule::Static,
    });
    let base = simulate(
        &machine,
        vec![JobSpec::pinned(serial_trace, serial().contexts)],
    )
    .jobs[0]
        .cycles as f64;

    // Part 1: loop schedules on the two fully loaded configurations.
    let schedules = [
        ("static", Schedule::Static),
        ("static,8", Schedule::StaticChunk(8)),
        ("dynamic,8", Schedule::Dynamic(8)),
        ("guided,4", Schedule::Guided(4)),
    ];
    let mut t = Table::new("CG speedup by OpenMP schedule").header([
        "Schedule",
        "HT off -4-2",
        "HT on -8-2",
    ]);
    for (name, sched) in schedules {
        let mut row = vec![name.to_string()];
        for cfg_name in ["HT off -4-2", "HT on -8-2"] {
            let cfg = config_by_name(cfg_name).unwrap();
            let trace = store.get(TraceKey {
                kernel: KernelId::Cg,
                class: Class::T,
                nthreads: cfg.threads,
                schedule: sched,
            });
            let out = simulate(&machine, vec![JobSpec::pinned(trace, cfg.contexts.clone())]);
            row.push(format!("{:.2}", base / out.jobs[0].cycles as f64));
        }
        t.row(row);
    }
    println!("{t}");

    // Part 2: placement policy for a CG+FT pair on the CMP-based SMP —
    // does packing a program per chip beat spreading it across chips?
    let cfg = config_by_name("CMP-based SMP").unwrap();
    let per = cfg.threads / 2;
    let cg = store.get(TraceKey {
        kernel: KernelId::Cg,
        class: Class::T,
        nthreads: per,
        schedule: Schedule::Static,
    });
    let ft = store.get(TraceKey {
        kernel: KernelId::Ft,
        class: Class::T,
        nthreads: per,
        schedule: Schedule::Static,
    });
    let mut t = Table::new("CG/FT pair on CMP-based SMP by placement policy").header([
        "Policy",
        "CG cycles",
        "FT cycles",
        "wall",
    ]);
    for (name, policy) in [
        ("spread (one core per chip each)", PlacementPolicy::Spread),
        ("packed (one chip per program)", PlacementPolicy::Packed),
    ] {
        let placements = split_jobs(&cfg.contexts, 2, policy);
        let out = simulate(
            &machine,
            vec![
                JobSpec::pinned(cg.clone(), placements[0].clone()),
                JobSpec::pinned(ft.clone(), placements[1].clone()),
            ],
        );
        t.row([
            name.to_string(),
            out.jobs[0].cycles.to_string(),
            out.jobs[1].cycles.to_string(),
            out.wall_cycles.to_string(),
        ]);
    }
    println!("{t}");
}
