//! Symbiosis advisor: the paper's future work ("devising optimal
//! schedulers") prototyped — compute the benchmark symbiosis matrix on the
//! fully loaded machine and ask the placement advisor how to co-locate a
//! compute/memory pair.
//!
//! ```sh
//! cargo run --release --example symbiosis_advisor
//! ```

use paxsim_core::advisor::{advise_placement, symbiosis_matrix, symbiosis_text};
use paxsim_core::prelude::*;
use paxsim_nas::KernelId;

fn main() {
    let opts = StudyOptions::quick();
    let store = TraceStore::new();

    // Symbiosis of a representative benchmark set on the CMT-based SMP.
    let cfg = config_by_name("CMT-based SMP").unwrap();
    let benches = [
        KernelId::Ep,
        KernelId::Is,
        KernelId::Cg,
        KernelId::Ft,
        KernelId::Lu,
    ];
    let matrix = symbiosis_matrix(&opts, &store, &benches, &cfg);
    println!("{}", symbiosis_text(&matrix, &cfg));

    let best = matrix
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
        .unwrap();
    let worst = matrix
        .iter()
        .min_by(|a, b| a.score.partial_cmp(&b.score).unwrap())
        .unwrap();
    println!(
        "schedule together: {}/{} (score {:.2}); keep apart: {}/{} (score {:.2})\n",
        best.pair.0, best.pair.1, best.score, worst.pair.0, worst.pair.1, worst.score
    );

    // Placement advice for the paper's CG/FT pair on the CMP-based SMP.
    let cmp_smp = config_by_name("CMP-based SMP").unwrap();
    let choices = advise_placement(&opts, &store, KernelId::Cg, KernelId::Ft, &cmp_smp);
    println!("placement advice for cg/ft on {}:", cmp_smp.name);
    for (rank, c) in choices.iter().enumerate() {
        println!(
            "  {}. {:?}: wall {} cycles (cg {}, ft {})",
            rank + 1,
            c.policy,
            c.wall_cycles,
            c.job_cycles[0],
            c.job_cycles[1]
        );
    }
}
