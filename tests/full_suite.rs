//! Integration: every NAS benchmark runs, verifies its numerics, and
//! produces sane counters on every Table 1 configuration.

use paxsim_core::prelude::*;
use paxsim_machine::sim::{simulate, JobSpec};
use paxsim_nas::{all_kernels, Class};
use paxsim_omp::schedule::Schedule;

#[test]
fn every_benchmark_verifies_at_every_thread_count() {
    for k in all_kernels() {
        for threads in [1, 2, 4, 8] {
            let built = k.build(Class::T, threads, Schedule::Static);
            assert!(
                built.verify.passed,
                "{k} x{threads}: {}",
                built.verify.details
            );
            assert_eq!(built.trace.nthreads, threads);
            assert!(built.trace.instructions() > 0);
        }
    }
}

#[test]
fn every_benchmark_runs_on_every_configuration() {
    let machine = paxsim_machine::config::MachineConfig::paxville_smp();
    let store = TraceStore::new();
    for k in all_kernels() {
        for cfg in all_configs() {
            let trace = store.get(TraceKey {
                kernel: k,
                class: Class::T,
                nthreads: cfg.threads,
                schedule: Schedule::Static,
            });
            let out = simulate(&machine, vec![JobSpec::pinned(trace, cfg.contexts.clone())]);
            let c = &out.jobs[0].counters;
            let m = c.metrics();
            assert!(out.jobs[0].cycles > 0, "{k}/{}", cfg.name);
            assert!(c.instructions > 0);
            // All rates are well-formed.
            for (name, v) in [
                ("l1", m.l1_miss_rate),
                ("l2", m.l2_miss_rate),
                ("tc", m.tc_miss_rate),
                ("itlb", m.itlb_miss_rate),
                ("stall", m.pct_stalled),
                ("bp", m.branch_prediction_rate),
                ("pf", m.pct_prefetch_bus),
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{k}/{}: {name} rate {v} out of range",
                    cfg.name
                );
            }
            assert!(
                m.cpi > 0.0 && m.cpi < 100.0,
                "{k}/{}: CPI {}",
                cfg.name,
                m.cpi
            );
            // Work is conserved: instruction counts do not depend on the
            // hardware configuration for a given thread count.
        }
    }
}

#[test]
fn instructions_independent_of_configuration() {
    // Same trace, different hardware: identical retired instructions.
    let machine = paxsim_machine::config::MachineConfig::paxville_smp();
    let store = TraceStore::new();
    let trace = store.get(TraceKey {
        kernel: paxsim_nas::KernelId::Mg,
        class: Class::T,
        nthreads: 4,
        schedule: Schedule::Static,
    });
    let mut counts = std::collections::HashSet::new();
    for name in ["CMT", "SMT-based SMP", "CMP-based SMP"] {
        let cfg = config_by_name(name).unwrap();
        let out = simulate(
            &machine,
            vec![JobSpec::pinned(trace.clone(), cfg.contexts.clone())],
        );
        counts.insert(out.jobs[0].counters.instructions);
    }
    assert_eq!(
        counts.len(),
        1,
        "retired work must be configuration-invariant"
    );
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let run = || {
        let opts = StudyOptions::quick().with_benchmarks(vec![paxsim_nas::KernelId::Is]);
        let store = TraceStore::new();
        let s = run_single_program(&opts, &store);
        s.cells[0]
            .iter()
            .map(|c| (c.cycles.mean as u64, c.counters.l2_miss))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn more_contexts_never_increase_retired_work_per_benchmark() {
    // Sanity on trace generation: total instructions grow only mildly with
    // thread count (runtime overhead), never shrink below the serial work.
    for k in all_kernels() {
        let serial = k.build(Class::T, 1, Schedule::Static).trace.instructions();
        let eight = k.build(Class::T, 8, Schedule::Static).trace.instructions();
        assert!(eight as f64 >= serial as f64 * 0.98, "{k}: lost work");
        assert!(
            (eight as f64) < serial as f64 * 1.25,
            "{k}: runtime overhead exploded: {serial} → {eight}"
        );
    }
}
