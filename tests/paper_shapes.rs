//! Integration: the paper's qualitative claims (DESIGN.md §4 fidelity
//! targets), asserted as *shapes* at tiny class. Absolute values are
//! recorded against the paper in EXPERIMENTS.md; these tests pin down the
//! orderings and directions that must not regress.

use paxsim_core::multi::{paper_workloads, run_multi_program};
use paxsim_core::prelude::*;
use paxsim_nas::{paper_apps, KernelId};

fn study() -> SingleStudy {
    let opts = StudyOptions::quick();
    run_single_program(&opts, &TraceStore::new())
}

#[test]
fn platform_calibrates_to_paper_section3() {
    let report = calibrate(&paxsim_machine::config::MachineConfig::paxville_smp());
    assert!(
        report.within(0.15),
        "platform off by {:.1}% on {}",
        report.worst().rel_err() * 100.0,
        report.worst().name
    );
}

#[test]
fn fully_loaded_configurations_have_highest_average_speedup() {
    // Paper: "the CMP-based SMP and CMT-based SMP configurations have the
    // highest average speedup across all of the applications."
    let s = study();
    let mut avgs = s.average_speedups();
    avgs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top2: Vec<&str> = avgs[..2].iter().map(|(a, _)| a.as_str()).collect();
    assert!(top2.contains(&"CMP-based SMP"), "top2 = {top2:?}");
    assert!(top2.contains(&"CMT-based SMP"), "top2 = {top2:?}");
}

#[test]
fn ht_configurations_stall_more_than_their_ht_off_peers() {
    // Paper §4.1.3: within groups 2–4, the HT-on member shows more stalled
    // cycles than the HT-off member (thread contention for shared core
    // resources). Assert it per group as a strong majority across apps.
    let s = study();
    let mut more = 0;
    let mut total = 0;
    for (off, on) in [
        ("CMP", "CMT"),
        ("SMP", "SMT-based SMP"),
        ("CMP-based SMP", "CMT-based SMP"),
    ] {
        for &b in &s.benchmarks {
            let v_off = s.cell(b, off).unwrap().metrics().pct_stalled;
            let v_on = s.cell(b, on).unwrap().metrics().pct_stalled;
            total += 1;
            if v_on > v_off {
                more += 1;
            }
        }
    }
    assert!(
        more * 4 >= total * 3,
        "HT-on should stall more in ≥75% of group comparisons: {more}/{total}"
    );
}

#[test]
fn ht_configurations_have_higher_cpi_within_groups() {
    // Paper §4.1.6: HT-on configurations show higher CPI than the HT-off
    // member of their group (per-thread efficiency drops under sharing).
    let s = study();
    for (off, on) in [
        ("CMP", "CMT"),
        ("SMP", "SMT-based SMP"),
        ("CMP-based SMP", "CMT-based SMP"),
    ] {
        let mut worse = 0;
        for &b in &s.benchmarks {
            let c_off = s.cell(b, off).unwrap().metrics().cpi;
            let c_on = s.cell(b, on).unwrap().metrics().cpi;
            if c_on > c_off {
                worse += 1;
            }
        }
        assert!(
            worse >= s.benchmarks.len() - 1,
            "{on} should have higher CPI than {off} for nearly all apps ({worse}/{})",
            s.benchmarks.len()
        );
    }
}

#[test]
fn l1_miss_rates_are_flat_across_configurations() {
    // Paper §4.1.1: "The L1 cache miss rates are flat across the different
    // configurations."
    let s = study();
    for (bi, &b) in s.benchmarks.iter().enumerate() {
        let rates: Vec<f64> = s.cells[bi]
            .iter()
            .map(|c| c.metrics().l1_miss_rate)
            .collect();
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = rates.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max - min < 0.12,
            "{b}: L1 miss rate spread too large: {rates:?}"
        );
    }
}

#[test]
fn lu_has_the_worst_trace_cache_behaviour() {
    // Paper §4.1.7 discusses a benchmark with extreme trace-cache miss
    // rates (up to 87.3%); in our suite LU is that benchmark by design.
    let s = study();
    let tc = |b: KernelId| s.cell(b, "CMP-based SMP").unwrap().metrics().tc_miss_rate;
    for other in paper_apps() {
        if other != KernelId::Lu {
            assert!(
                tc(KernelId::Lu) >= tc(other),
                "LU TC {:.3} should top {other} {:.3}",
                tc(KernelId::Lu),
                tc(other)
            );
        }
    }
    assert!(
        tc(KernelId::Lu) > 0.2,
        "LU must be TC-bound: {}",
        tc(KernelId::Lu)
    );
}

#[test]
fn group2_has_prefetch_headroom() {
    // Paper §4.1.5: group 2 (one chip, two threads) "is the only group
    // that has the memory bandwidth capacity left over" for prefetching.
    // Shape: the CMP configuration shows at least as much prefetch share
    // as the fully loaded CMT-based SMP for the bandwidth-hungry apps.
    let s = study();
    let mut wins = 0;
    let mut total = 0;
    for &b in &s.benchmarks {
        let g2 = s.cell(b, "CMP").unwrap().metrics().pct_prefetch_bus;
        let g4 = s
            .cell(b, "CMT-based SMP")
            .unwrap()
            .metrics()
            .pct_prefetch_bus;
        total += 1;
        if g2 >= g4 * 0.9 {
            wins += 1;
        }
    }
    assert!(
        wins * 2 >= total,
        "group 2 should keep prefetch headroom ({wins}/{total})"
    );
}

#[test]
fn complementary_pairs_beat_homogeneous_pairs() {
    // Paper §4.2.7: running the compute-bound and memory-bound programs
    // together beats running two copies of the memory-bound one.
    let opts = StudyOptions::quick();
    let store = TraceStore::new();
    let m = run_multi_program(&opts, &store, &paper_workloads());
    let cfg = "CMP-based SMP";
    let cg_with_ft = m.cell((KernelId::Cg, KernelId::Ft), cfg).unwrap().sides[0]
        .cell
        .speedup
        .mean;
    let cg_with_cg = m.cell((KernelId::Cg, KernelId::Cg), cfg).unwrap().sides[0]
        .cell
        .speedup
        .mean;
    assert!(
        cg_with_ft > cg_with_cg,
        "cg should prefer an FT co-runner: {cg_with_ft:.2} vs {cg_with_cg:.2}"
    );
}

#[test]
fn ht_on_architectures_show_widest_pair_spread() {
    // Paper §4.3: "the large whiskers on the results for the HT on
    // architectures."
    let opts = StudyOptions::quick().with_benchmarks(vec![
        KernelId::Ep,
        KernelId::Cg,
        KernelId::Ft,
        KernelId::Lu,
    ]);
    let store = TraceStore::new();
    let cross = run_cross_product(&opts, &store);
    let range = |name: &str| {
        cross
            .boxes()
            .into_iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.range())
            .unwrap()
    };
    let widest_on = range("HT on -8-2").max(range("HT on -4-1"));
    let widest_off = range("HT off -4-2").max(range("HT off -2-1"));
    assert!(
        widest_on > widest_off,
        "HT on spread {widest_on:.2} should exceed HT off {widest_off:.2}"
    );
}

#[test]
fn serial_region_time_shows_up_as_sync_not_stall() {
    // Methodology check: barrier/serial waiting is reported separately
    // from hardware stalls (the paper's stall counters are hardware
    // events).
    let s = study();
    for (bi, _) in s.benchmarks.iter().enumerate() {
        let serial_cell = &s.cells[bi][0];
        assert_eq!(
            serial_cell.counters.ticks_sync, 0,
            "serial run cannot wait on itself"
        );
    }
}
