//! Offline stand-in for the `criterion` crate.
//!
//! Implements the narrow API surface this workspace's benches use:
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! bench_function, finish}`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is plain
//! wall-clock sampling (median of N samples) printed to stdout — no
//! statistics engine, plots, or HTML reports.

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            group: name,
            sample_size: 10,
        }
    }

    /// Accepted for CLI compatibility; the stub has no config to apply.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed.as_secs_f64() / b.iters as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples.get(samples.len() / 2).copied().unwrap_or(0.0);
        println!(
            "  {}/{}: median {} over {} samples",
            self.group,
            id,
            format_seconds(median),
            samples.len()
        );
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then a fixed sample of timed iterations.
        black_box(f());
        const ITERS: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS;
    }
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        let mut calls = 0u64;
        g.sample_size(2).bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        g.finish();
        assert!(calls >= 2, "closure should run at least once per sample");
    }
}
