//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API this workspace uses — the
//! [`strategy::Strategy`] trait, range/tuple/collection strategies,
//! `prop_oneof!`, `prop_assert!`-family macros and the `proptest!` test
//! harness — implemented over a small deterministic RNG. Failing cases are
//! reported with their case number and seed but are **not shrunk**.

pub mod rng {
    /// SplitMix64: tiny, fast, deterministic.
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed ^ 0x9e37_79b9_7f4a_7c15)
        }

        /// Seed from a test's module path + name so every test gets a
        /// stable but distinct stream.
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Rng::new(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty range");
            // Modulo bias is irrelevant for test-input generation.
            self.next_u64() % bound
        }

        pub fn bool(&mut self) -> bool {
            self.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use crate::rng::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut Rng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous strategy lists (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies (the `prop_oneof!` backend).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { arms }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut Rng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            let u = rng.next_u64() >> 11; // 53 bits
            let unit = u as f64 / (1u64 << 53) as f64;
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($t:ident . $n:tt),+),)*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
    }
}

pub mod bool {
    use crate::rng::Rng;
    use crate::strategy::Strategy;

    /// Strategy yielding uniformly random booleans.
    pub struct Any;
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.bool()
        }
    }
}

pub mod collection {
    use crate::rng::Rng;
    use crate::strategy::Strategy;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a `Vec` of `size` elements of `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set`: distinct elements; gives up growing
    /// (keeping what it has) if the element domain is too small.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut Rng) -> HashSet<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            let mut out = HashSet::new();
            let mut tries = 0;
            while out.len() < len && tries < len * 20 + 100 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (`cases` is the only knob the repo uses).
    #[derive(Clone, Copy)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // Smaller than upstream's 256: the repo's properties run whole
            // engine simulations per case, and tier-1 must stay quick.
            Config { cases: 64 }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// The test harness: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` that runs `body` over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng = $crate::rng::Rng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for __case in 0..__cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { $body }),
                    );
                    if let Err(e) = __result {
                        eprintln!(
                            "proptest (vendored): case {}/{} of {} failed (no shrinking)",
                            __case + 1, __cfg.cases, stringify!($name),
                        );
                        ::std::panic::resume_unwind(e);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::rng::Rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(10u64..20), &mut rng);
            assert!((10..20).contains(&v));
            let w = Strategy::generate(&(3usize..=3), &mut rng);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![
            (0u32..5).prop_map(|x| x * 2),
            Just(99u32),
        ];
        let mut rng = Rng::new(1);
        let mut saw_just = false;
        for _ in 0..200 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!(v == 99 || (v % 2 == 0 && v < 10));
            saw_just |= v == 99;
        }
        assert!(saw_just, "both arms should be exercised");
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0u8..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let s = Strategy::generate(&crate::collection::hash_set(0u64..100, 1..4), &mut rng);
            assert!((1..4).contains(&s.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The harness itself: generated args are visible in the body.
        #[test]
        fn harness_binds_args(a in 0u64..10, b in 5usize..6) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, 5);
        }
    }
}
