//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serialization framework with the same
//! surface the repo actually uses: `#[derive(Serialize, Deserialize)]` on
//! plain structs and enums, driven through a JSON-shaped [`Value`] tree.
//! `serde_json` (also vendored) renders and parses that tree.
//!
//! This is intentionally *not* the full serde data model — no zero-copy,
//! no custom serializers, and only the `#[serde(default)]` field
//! attribute — just enough to keep the repo's reports and config
//! round-trips working hermetically.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree: the single intermediate representation every
/// [`Serialize`]/[`Deserialize`] impl targets.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Unsigned integers (u8..u64, usize).
    UInt(u64),
    /// Signed integers that don't fit the unsigned lane.
    Int(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value map (JSON object).
    Object(Vec<(String, Value)>),
}

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Object field lookup (`None` when absent or not an object).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup.
    pub fn get_index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(a) => a.get(i),
            _ => None,
        }
    }

    /// Field lookup that reports a useful error (used by derived impls).
    pub fn field_or_err(&self, key: &str) -> Result<&Value, Error> {
        self.get(key)
            .ok_or_else(|| Error::msg(format!("missing field `{key}`")))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::UInt(u) => Some(u as f64),
            Value::Int(i) => Some(i as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) if u <= i64::MAX as u64 => Some(u as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.get_index(i).unwrap_or(&NULL)
    }
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|u| <$t>::try_from(u).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|i| <$t>::try_from(i).ok())
                    .ok_or_else(|| Error::msg(concat!("expected ", stringify!($t))))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::msg("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Copy + Default, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(a) if a.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(a) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::msg("expected fixed-size array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+),)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(a) => Ok(($($t::from_value(
                        a.get($n).ok_or_else(|| Error::msg("tuple too short"))?
                    )?,)+)),
                    _ => Err(Error::msg("expected tuple array")),
                }
            }
        }
    )*};
}
impl_tuple! {
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_indexing() {
        let v = Value::Object(vec![(
            "a".to_string(),
            Value::Array(vec![Value::UInt(7), Value::Float(1.5)]),
        )]);
        assert_eq!(v["a"][0].as_u64(), Some(7));
        assert_eq!(v["a"][1].as_f64(), Some(1.5));
        assert_eq!(v["missing"][3], Value::Null);
    }

    #[test]
    fn primitive_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&2.8f64.to_value()).unwrap(), 2.8);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let v: Vec<u32> = Deserialize::from_value(&vec![1u32, 2, 3].to_value()).unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let t: (String, f64) =
            Deserialize::from_value(&("x".to_string(), 0.5).to_value()).unwrap();
        assert_eq!(t, ("x".to_string(), 0.5));
    }
}
