//! Derive macros for the vendored `serde` stand-in.
//!
//! Parses the item token stream directly (no `syn`/`quote` — those aren't
//! available offline either) and emits `Serialize`/`Deserialize` impls
//! against the simplified `serde::Value` data model. Supports exactly the
//! shapes this workspace uses:
//!
//! * structs with named fields (no generics),
//! * enums whose variants are unit or single-field tuple variants,
//! * the `#[serde(default)]` field attribute: a field absent from the
//!   input deserializes to `Default::default()` (forward compatibility
//!   for configs serialized before the field existed).

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the deriving item.
enum Item {
    /// Fields are `(name, has_serde_default)`.
    Struct { name: String, fields: Vec<(String, bool)> },
    Enum { name: String, variants: Vec<(String, bool)> }, // (name, has_payload)
}

/// Does this attribute group body (the `[...]` contents) spell
/// `serde(default)`?
fn is_serde_default(g: &proc_macro::Group) -> bool {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    match (toks.first(), toks.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(t, TokenTree::Ident(ref i) if i.to_string() == "default"))
        }
        _ => false,
    }
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive: expected `struct` or `enum`, got {t:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        t => panic!("serde_derive: expected item name, got {t:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported");
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(_) => i += 1,
            None => panic!("serde_derive: item `{name}` has no braced body"),
        }
    };

    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        k => panic!("serde_derive: cannot derive for `{k}` items"),
    }
}

/// Extract `(field_name, has_serde_default)` pairs from a named-field
/// struct body.
fn parse_named_fields(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut defaulted = false;
    let mut i = 0;
    while i < tokens.len() {
        // Skip attributes and visibility before the field name, noting
        // whether a `#[serde(default)]` applies to the upcoming field.
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                    defaulted |= is_serde_default(g);
                }
                i += 2;
                continue;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
                continue;
            }
            TokenTree::Ident(id) => {
                fields.push((id.to_string(), std::mem::take(&mut defaulted)));
                i += 1;
                // Expect ':', then skip the type until a top-level ','.
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    t => panic!("serde_derive: expected `:` after field, got {t:?}"),
                }
                let mut angle = 0i32;
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            t => panic!("serde_derive: unexpected token in struct body: {t:?}"),
        }
    }
    fields
}

/// Extract `(variant_name, has_payload)` pairs from an enum body.
fn parse_variants(body: TokenStream) -> Vec<(String, bool)> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // attribute such as #[default] or a doc comment
            }
            TokenTree::Ident(id) => {
                let name = id.to_string();
                i += 1;
                let mut payload = false;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    match g.delimiter() {
                        Delimiter::Parenthesis => {
                            payload = true;
                            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                            let mut angle = 0i32;
                            for t in &inner {
                                if let TokenTree::Punct(p) = t {
                                    match p.as_char() {
                                        '<' => angle += 1,
                                        '>' => angle -= 1,
                                        ',' if angle == 0 => panic!(
                                            "serde_derive (vendored): multi-field tuple \
                                             variants are not supported ({name})"
                                        ),
                                        _ => {}
                                    }
                                }
                            }
                            i += 1;
                        }
                        Delimiter::Brace => panic!(
                            "serde_derive (vendored): struct variants are not supported ({name})"
                        ),
                        _ => {}
                    }
                }
                variants.push((name, payload));
                // Skip discriminant or trailing comma.
                while i < tokens.len() {
                    match &tokens[i] {
                        TokenTree::Punct(p) if p.as_char() == ',' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
            }
            t => panic!("serde_derive: unexpected token in enum body: {t:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|(f, _)| {
                    format!(
                        "__m.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                             = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(__m)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(__x) => ::serde::Value::Object(vec![({v:?}.to_string(), \
                             ::serde::Serialize::to_value(__x))]),\n"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::String({v:?}.to_string()),\n")
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|(f, defaulted)| {
                    if *defaulted {
                        format!(
                            "{f}: match __v.get({f:?}) {{\n\
                                 ::std::option::Option::Some(__fv) => \
                                     ::serde::Deserialize::from_value(__fv)?,\n\
                                 ::std::option::Option::None => \
                                     ::std::default::Default::default(),\n\
                             }},\n"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(__v.field_or_err({f:?})?)?,\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok(Self {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, p)| !p)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, p)| *p)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__pv)?)),\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::msg(\
                                     format!(\"unknown variant {{__other}} of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                                 let (__tag, __pv) = &__m[0];\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::msg(\
                                         format!(\"unknown variant {{__other}} of {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::Error::msg(\
                                 \"expected enum representation for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive: generated code must parse")
}
