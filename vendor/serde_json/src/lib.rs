//! Offline stand-in for `serde_json`: renders and parses the vendored
//! `serde::Value` tree as real JSON text.

pub use serde::{Error, Value};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialize any `Serialize` type into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuild a `Deserialize` type from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse(s)?;
    T::from_value(&v)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{f:?}");
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Float(f) => write_f64(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !a.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !m.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::String),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("bad escape"))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code).ok_or_else(|| Error::msg("bad codepoint"))?,
                            );
                        }
                        _ => return Err(Error::msg("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    self.pos = start + c.len_utf8();
                    out.push(c);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        let float = text.contains(['.', 'e', 'E']);
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            out.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::UInt(3)),
            ("b".to_string(), Value::Float(2.8)),
            ("c".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
            ("s".to_string(), Value::String("hi \"there\"\n".to_string())),
            ("neg".to_string(), Value::Int(-7)),
        ]);
        let text = to_string(&v).unwrap();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn float_precision_roundtrips() {
        for f in [2.8f64, 0.1, 1e-12, 136.85, f64::MAX] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(f, back, "{text}");
        }
    }

    #[test]
    fn parses_nested_json() {
        let v = parse(r#"{"x": [1, 2.5, "s"], "y": {"z": null}}"#).unwrap();
        assert_eq!(v["x"][1].as_f64(), Some(2.5));
        assert_eq!(v["y"]["z"], Value::Null);
    }
}
